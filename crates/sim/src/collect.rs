//! Flat hot-path collections for simulator state.
//!
//! The DES hot paths key state by small dense identifiers (line
//! addresses, block addresses, GPM ids). `std`'s ordered maps pay a
//! pointer chase per tree level on every access; [`FlatMap`] instead
//! keeps entries in a dense `Vec` with an open-addressing index of
//! `u32` positions beside it — O(1) lookup/insert/remove, one indirection,
//! and cache-friendly iteration.
//!
//! **Determinism.** The hash function is a fixed arithmetic mix of the
//! key's value (never of addresses or any per-process state), and
//! iteration order is a pure function of the operation sequence
//! (insertion order, perturbed only by `remove`'s documented
//! swap-removal). Two runs issuing the same operations therefore
//! observe identical iteration order — the property the hmg-audit
//! `unordered-map` lint exists to protect. Call sites that fold state
//! into digests or drive simulation behavior from iteration still sort
//! explicitly, exactly as they did over the ordered maps, so replacing
//! the map cannot move an observable event.

use crate::addr::{BlockAddr, LineAddr, PageId};

/// Keys usable in [`FlatMap`]/[`FlatSet`]: hashed by value with a fixed
/// deterministic mix.
pub trait FlatKey: Copy + Eq {
    /// A well-mixed 64-bit hash of the key's value.
    fn flat_hash(&self) -> u64;
}

/// SplitMix64 finalizer: a fixed, seedless bit mix.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

macro_rules! int_flat_key {
    ($($t:ty),*) => {$(
        impl FlatKey for $t {
            #[inline]
            fn flat_hash(&self) -> u64 {
                mix(*self as u64)
            }
        }
    )*};
}
int_flat_key!(u8, u16, u32, u64, usize);

impl FlatKey for LineAddr {
    #[inline]
    fn flat_hash(&self) -> u64 {
        mix(self.0)
    }
}
impl FlatKey for BlockAddr {
    #[inline]
    fn flat_hash(&self) -> u64 {
        mix(self.0)
    }
}
impl FlatKey for PageId {
    #[inline]
    fn flat_hash(&self) -> u64 {
        mix(self.0)
    }
}

impl<A: FlatKey, B: FlatKey> FlatKey for (A, B) {
    #[inline]
    fn flat_hash(&self) -> u64 {
        // Feed the second hash through the mixer keyed by the first so
        // (a, b) and (b, a) decorrelate.
        mix(self.0.flat_hash() ^ self.1.flat_hash().rotate_left(32))
    }
}

/// Index slot states: `0` = never used, `TOMBSTONE` = deleted,
/// otherwise `entry position + 1`.
const TOMBSTONE: u32 = u32::MAX;

/// A dense insertion-ordered map with an open-addressing index.
///
/// See the module docs for the determinism argument. `remove` swaps the
/// last entry into the removed position (O(1)); sites that need a
/// specific order sort explicitly.
///
/// # Example
///
/// ```
/// use hmg_sim::collect::FlatMap;
///
/// let mut m: FlatMap<u64, u32> = FlatMap::new();
/// m.insert(7, 1);
/// *m.or_insert(7, 0) += 10;
/// assert_eq!(m.get(&7), Some(&11));
/// assert_eq!(m.remove(&7), Some(11));
/// assert!(m.is_empty());
/// ```
#[derive(Clone)]
pub struct FlatMap<K, V> {
    entries: Vec<(K, V)>,
    index: Vec<u32>,
    /// Live index slots that are not empty (entries + tombstones); the
    /// rehash trigger.
    occupied: usize,
}

impl<K: FlatKey, V> FlatMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
            index: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.fill(0);
        self.occupied = 0;
    }

    /// Position of `k` in `entries`, if present.
    #[inline]
    fn find(&self, k: &K) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = (k.flat_hash() as usize) & mask;
        loop {
            match self.index[slot] {
                0 => return None,
                TOMBSTONE => {}
                pos1 => {
                    let pos = (pos1 - 1) as usize;
                    if self.entries[pos].0 == *k {
                        return Some(pos);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// A shared reference to the value for `k`.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        self.find(k).map(|p| &self.entries[p].1)
    }

    /// A mutable reference to the value for `k`.
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.find(k).map(|p| &mut self.entries[p].1)
    }

    /// Whether `k` is present.
    #[inline]
    pub fn contains_key(&self, k: &K) -> bool {
        self.find(k).is_some()
    }

    /// Inserts `k → v`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        if let Some(p) = self.find(&k) {
            return Some(std::mem::replace(&mut self.entries[p].1, v));
        }
        self.push_new(k, v);
        None
    }

    /// The value for `k`, inserting `default` first if absent
    /// (`BTreeMap::entry(k).or_insert(default)` equivalent).
    #[inline]
    pub fn or_insert(&mut self, k: K, default: V) -> &mut V {
        self.or_insert_with(k, || default)
    }

    /// The value for `k`, inserting `make()` first if absent.
    #[inline]
    pub fn or_insert_with(&mut self, k: K, make: impl FnOnce() -> V) -> &mut V {
        let p = match self.find(&k) {
            Some(p) => p,
            None => self.push_new(k, make()),
        };
        &mut self.entries[p].1
    }

    /// Removes `k`, returning its value. O(1): the last entry is
    /// swapped into the hole, so relative order of remaining entries
    /// changes — deterministically, as a function of the op sequence.
    #[inline]
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let p = self.find(k)?;
        let mask = self.index.len() - 1;
        // Tombstone the removed key's slot.
        let mut slot = (k.flat_hash() as usize) & mask;
        while self.index[slot] != (p + 1) as u32 {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = TOMBSTONE;
        let (_, v) = self.entries.swap_remove(p);
        // Re-point the moved (former last) entry's slot, if any moved.
        if p < self.entries.len() {
            let moved_hash = self.entries[p].0.flat_hash();
            let old_pos1 = (self.entries.len() + 1) as u32;
            let mut s = (moved_hash as usize) & mask;
            while self.index[s] != old_pos1 {
                s = (s + 1) & mask;
            }
            self.index[s] = (p + 1) as u32;
        }
        Some(v)
    }

    /// Iterates entries in dense-storage order (see type docs).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries mutably in dense-storage order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in dense-storage order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in dense-storage order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Appends a new key (caller guarantees absence); returns its
    /// position.
    fn push_new(&mut self, k: K, v: V) -> usize {
        if (self.occupied + 1) * 8 >= self.index.len() * 7 {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = (k.flat_hash() as usize) & mask;
        loop {
            match self.index[slot] {
                0 => {
                    self.occupied += 1;
                    break;
                }
                TOMBSTONE => break, // reuse; occupancy unchanged
                _ => slot = (slot + 1) & mask,
            }
        }
        self.entries.push((k, v));
        self.index[slot] = self.entries.len() as u32;
        self.entries.len() - 1
    }

    /// Doubles the index (min 16 slots) and reinserts every live
    /// position, clearing accumulated tombstones.
    fn grow(&mut self) {
        let cap = (self.index.len() * 2).max(16);
        self.index.clear();
        self.index.resize(cap, 0);
        self.occupied = self.entries.len();
        let mask = cap - 1;
        for (pos, (k, _)) in self.entries.iter().enumerate() {
            let mut slot = (k.flat_hash() as usize) & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = (pos + 1) as u32;
        }
    }
}

impl<K: FlatKey, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap::new()
    }
}

impl<K: FlatKey + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for FlatMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A dense set over [`FlatKey`] keys; a thin wrapper around [`FlatMap`].
///
/// # Example
///
/// ```
/// use hmg_sim::collect::FlatSet;
///
/// let mut s: FlatSet<u64> = FlatSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(&3));
/// ```
#[derive(Clone)]
pub struct FlatSet<K> {
    map: FlatMap<K, ()>,
}

impl<K: FlatKey> Default for FlatSet<K> {
    fn default() -> Self {
        FlatSet::new()
    }
}

impl<K: FlatKey> FlatSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlatSet {
            map: FlatMap::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts `k`; `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, k: K) -> bool {
        self.map.insert(k, ()).is_none()
    }

    /// Whether `k` is a member.
    #[inline]
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Removes `k`; `true` if it was present.
    #[inline]
    pub fn remove(&mut self, k: &K) -> bool {
        self.map.remove(k).is_some()
    }

    /// Removes every member, keeping capacity.
    pub fn clear(&mut self) {
        self.map.clear()
    }

    /// Iterates members in dense-storage order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

impl<K: FlatKey + std::fmt::Debug> std::fmt::Debug for FlatSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A freelist of `Vec<T>` buffers so hot paths that repeatedly create
/// and drop short-lived vectors (MSHR waiter lists, flag waiter lists,
/// fabric message batches) reuse their allocations instead of hitting
/// the allocator per transaction.
///
/// # Example
///
/// ```
/// use hmg_sim::collect::VecPool;
///
/// let mut pool: VecPool<u32> = VecPool::new();
/// let mut v = pool.take();
/// v.push(1);
/// pool.give(v); // cleared and kept for reuse
/// let v2 = pool.take();
/// assert!(v2.is_empty() && v2.capacity() >= 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> VecPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VecPool { free: Vec::new() }
    }

    /// Hands out a cleared buffer, reusing a returned one if available.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; its contents are dropped.
    pub fn give(&mut self, mut v: Vec<T>) {
        v.clear();
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update_remove_round_trip() {
        let mut m: FlatMap<u64, u64> = FlatMap::new();
        for i in 0..1000 {
            assert_eq!(m.insert(i, i * 2), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.insert(5, 99), Some(10));
        *m.get_mut(&5).unwrap() += 1;
        assert_eq!(m.get(&5), Some(&100));
        for i in (0..1000).step_by(2) {
            assert!(m.remove(&i).is_some(), "{i}");
        }
        assert_eq!(m.len(), 500);
        for i in 0..1000 {
            assert_eq!(m.contains_key(&i), i % 2 == 1, "{i}");
        }
        assert_eq!(m.remove(&2), None);
    }

    #[test]
    fn matches_btreemap_on_a_seeded_op_sequence() {
        use std::collections::BTreeMap;
        let mut flat: FlatMap<u64, u64> = FlatMap::new();
        let mut tree: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 512; // small key space forces collisions + reuse
            match x % 4 {
                0 | 1 => {
                    assert_eq!(flat.insert(k, step), tree.insert(k, step));
                }
                2 => {
                    assert_eq!(flat.remove(&k), tree.remove(&k));
                }
                _ => {
                    assert_eq!(flat.get(&k), tree.get(&k));
                    *flat.or_insert(k, 0) += 1;
                    *tree.entry(k).or_insert(0) += 1;
                }
            }
            assert_eq!(flat.len(), tree.len());
        }
        let mut a: Vec<_> = flat.iter().map(|(k, v)| (*k, *v)).collect();
        a.sort_unstable();
        let b: Vec<_> = tree.into_iter().collect();
        assert_eq!(a, b, "same final contents");
    }

    #[test]
    fn iteration_order_is_a_function_of_the_op_sequence() {
        let run = || {
            let mut m: FlatMap<u32, u32> = FlatMap::new();
            for i in 0..100 {
                m.insert(i, i);
            }
            for i in (0..100).step_by(3) {
                m.remove(&i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "two identical op sequences, same order");
    }

    #[test]
    fn clear_keeps_working_after_reuse() {
        let mut m: FlatMap<u32, u32> = FlatMap::new();
        for round in 0..3 {
            for i in 0..50 {
                m.insert(i, i + round);
            }
            assert_eq!(m.len(), 50);
            m.clear();
            assert!(m.is_empty());
            assert_eq!(m.get(&1), None);
        }
    }

    #[test]
    fn or_insert_with_runs_once_and_only_when_absent() {
        let mut m: FlatMap<u32, Vec<u32>> = FlatMap::new();
        m.or_insert_with(1, Vec::new).push(10);
        m.or_insert_with(1, || panic!("key present, must not run"))
            .push(11);
        assert_eq!(m.get(&1), Some(&vec![10, 11]));
    }

    #[test]
    fn tuple_and_addr_keys_work() {
        let mut m: FlatMap<(u16, LineAddr), u32> = FlatMap::new();
        m.insert((3, LineAddr(0x80)), 7);
        m.insert((4, LineAddr(0x80)), 8);
        assert_eq!(m.get(&(3, LineAddr(0x80))), Some(&7));
        assert_eq!(m.get(&(4, LineAddr(0x80))), Some(&8));
        assert_ne!(
            (3u16, LineAddr(0x80)).flat_hash(),
            (4u16, LineAddr(0x80)).flat_hash()
        );
        let mut s: FlatSet<PageId> = FlatSet::new();
        assert!(s.insert(PageId(9)));
        assert!(s.contains(&PageId(9)));
        assert!(s.remove(&PageId(9)));
        assert!(!s.remove(&PageId(9)));
    }

    #[test]
    fn vec_pool_recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..64);
        let cap = v.capacity();
        pool.give(v);
        assert_eq!(pool.idle(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "allocation was reused");
        assert_eq!(pool.idle(), 0);
    }
}
