//! Livelock watchdog: a progress monitor for discrete-event loops.
//!
//! Deadlock in a DES is structural — the event queue drains with work
//! outstanding — and is detected directly by the engine. *Livelock* is
//! subtler: events keep flowing (spinning flag polls, retried
//! requests) but nothing retires. [`ProgressWatchdog`] detects it by
//! tracking the last cycle at which real progress (a retired load or a
//! committed store) was reported and flagging when the gap exceeds a
//! configurable budget.

/// Tracks forward progress against a cycle budget.
///
/// With `budget = None` the watchdog is disarmed and never fires —
/// the default, since legitimate runs may have long memory-bound
/// stretches and the right budget is workload-dependent.
#[derive(Debug, Clone, Copy)]
pub struct ProgressWatchdog {
    budget: Option<u64>,
    last_progress: u64,
    /// End of the current grace window (quiesce epoch): progress gaps
    /// are measured from here while it is in the future.
    grace_until: u64,
}

impl ProgressWatchdog {
    /// A watchdog allowing up to `budget` cycles between retirements.
    pub fn new(budget: Option<u64>) -> Self {
        ProgressWatchdog {
            budget,
            last_progress: 0,
            grace_until: 0,
        }
    }

    /// Record that real progress happened at `now`.
    pub fn note_progress(&mut self, now: u64) {
        self.last_progress = self.last_progress.max(now);
    }

    /// Cycle of the most recent recorded progress.
    pub fn last_progress(&self) -> u64 {
        self.last_progress
    }

    /// Open a grace window: treat the watchdog as satisfied until
    /// `now + cycles`, without claiming real progress happened. Used by
    /// the engine's quiesce epochs — a fail-in-place reconfiguration
    /// legitimately retires nothing while drained transactions are
    /// re-issued and must not read as a livelock. Windows never shrink:
    /// a second `suspend` ending earlier is a no-op. Disarmed watchdogs
    /// (`budget = None`, the `--livelock-budget 0` CLI semantics) stay
    /// disarmed; the grace window is simply irrelevant to them.
    pub fn suspend(&mut self, now: u64, cycles: u64) {
        self.grace_until = self.grace_until.max(now.saturating_add(cycles));
    }

    /// If armed and `now` is more than the budget past the last
    /// progress (or past the current grace window, whichever ends
    /// later), returns the size of the stalled gap.
    pub fn stalled(&self, now: u64) -> Option<u64> {
        let budget = self.budget?;
        let base = self.last_progress.max(self.grace_until);
        let gap = now.saturating_sub(base);
        (gap > budget).then_some(gap)
    }
}

// The full triple (budget, last progress, grace window) round-trips so
// a restored run inherits the exact livelock accounting of the
// interrupted one, including any quiesce epoch that was still open.
impl crate::snap::SnapshotWrite for ProgressWatchdog {
    fn write_snap(&self, w: &mut crate::snap::SnapWriter) {
        self.budget.write_snap(w);
        w.put_u64(self.last_progress);
        w.put_u64(self.grace_until);
    }
}

impl crate::snap::SnapshotRead for ProgressWatchdog {
    fn read_snap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(ProgressWatchdog {
            budget: Option::read_snap(r)?,
            last_progress: r.get_u64()?,
            grace_until: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_watchdog_never_fires() {
        let w = ProgressWatchdog::new(None);
        assert_eq!(w.stalled(u64::MAX), None);
    }

    #[test]
    fn fires_only_past_budget() {
        let mut w = ProgressWatchdog::new(Some(100));
        assert_eq!(w.stalled(100), None);
        assert_eq!(w.stalled(101), Some(101));
        w.note_progress(50);
        assert_eq!(w.stalled(150), None);
        assert_eq!(w.stalled(151), Some(101));
    }

    #[test]
    fn suspend_opens_a_grace_window() {
        let mut w = ProgressWatchdog::new(Some(100));
        w.note_progress(50);
        // A quiesce epoch at cycle 60 suspends for 500 cycles: the
        // watchdog must hold its fire until 560 + budget.
        w.suspend(60, 500);
        assert_eq!(w.stalled(660), None);
        assert_eq!(w.stalled(661), Some(101));
        // Real progress after the window resumes normal accounting.
        w.note_progress(700);
        assert_eq!(w.stalled(800), None);
        assert_eq!(w.stalled(801), Some(101));
        // Windows never shrink.
        w.suspend(0, 1);
        assert_eq!(w.stalled(801), Some(101));
    }

    #[test]
    fn suspended_disarmed_watchdog_stays_disarmed() {
        let mut w = ProgressWatchdog::new(None);
        w.suspend(10, 10);
        assert_eq!(w.stalled(u64::MAX), None);
    }

    #[test]
    fn progress_is_monotone() {
        let mut w = ProgressWatchdog::new(Some(10));
        w.note_progress(90);
        w.note_progress(40); // out-of-order report must not rewind
        assert_eq!(w.last_progress(), 90);
        assert_eq!(w.stalled(95), None);
    }
}
