//! Byte addresses and the cache-line / directory-block / page granularities
//! derived from them.

use std::fmt;

/// A byte address in global memory (the virtual address space shared by
/// all GPUs — Section II's "global memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line index: the byte address divided by the line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A directory-block index: the cache-line index divided by the number of
/// lines each directory entry covers (4 in the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// An OS page index: the byte address divided by the page size (2 MB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

/// The granularities the memory system operates at.
///
/// # Example
///
/// ```
/// use hmg_sim::{MemGeometry, Addr};
///
/// let g = MemGeometry::paper_default(); // 128 B lines, 2 MB pages, 4 lines/block
/// let a = Addr(2 * 1024 * 1024 + 640);
/// assert_eq!(g.line_of(a).0, (2 * 1024 * 1024 + 640) / 128);
/// assert_eq!(g.page_of(a).0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    line_bytes: u32,
    lines_per_block: u32,
    page_bytes: u64,
}

impl MemGeometry {
    /// Builds a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, if `line_bytes` or
    /// `lines_per_block` is not a power of two, or if a page does not hold
    /// a whole number of lines.
    pub fn new(line_bytes: u32, lines_per_block: u32, page_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            lines_per_block.is_power_of_two(),
            "directory granularity must be a power of two"
        );
        assert!(page_bytes > 0 && page_bytes.is_multiple_of(line_bytes as u64));
        MemGeometry {
            line_bytes,
            lines_per_block,
            page_bytes,
        }
    }

    /// Table II values: 128 B lines, 2 MB pages; directory entries cover
    /// 4 cache lines (Section VI).
    pub fn paper_default() -> Self {
        MemGeometry::new(128, 4, 2 * 1024 * 1024)
    }

    /// Cache-line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of cache lines covered by one directory entry.
    #[inline]
    pub fn lines_per_block(&self) -> u32 {
        self.lines_per_block
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// The cache line containing `a`.
    #[inline]
    pub fn line_of(&self, a: Addr) -> LineAddr {
        LineAddr(a.0 / self.line_bytes as u64)
    }

    /// The directory block containing `line`.
    #[inline]
    pub fn block_of(&self, line: LineAddr) -> BlockAddr {
        BlockAddr(line.0 / self.lines_per_block as u64)
    }

    /// The directory block containing byte address `a`.
    #[inline]
    pub fn block_of_addr(&self, a: Addr) -> BlockAddr {
        self.block_of(self.line_of(a))
    }

    /// The page containing `a`.
    #[inline]
    pub fn page_of(&self, a: Addr) -> PageId {
        PageId(a.0 / self.page_bytes)
    }

    /// The page containing cache line `line`.
    #[inline]
    pub fn page_of_line(&self, line: LineAddr) -> PageId {
        PageId(line.0 * self.line_bytes as u64 / self.page_bytes)
    }

    /// The first byte address of `line`.
    #[inline]
    pub fn line_base(&self, line: LineAddr) -> Addr {
        Addr(line.0 * self.line_bytes as u64)
    }

    /// The first cache line covered by directory block `b`. Total: every
    /// block covers at least one line (`lines_per_block >= 1`), so unlike
    /// `lines_of_block(b).next()` no `Option` is involved.
    #[inline]
    pub fn first_line_of_block(&self, b: BlockAddr) -> LineAddr {
        LineAddr(b.0 * self.lines_per_block as u64)
    }

    /// Iterates the cache lines covered by directory block `b`.
    pub fn lines_of_block(&self, b: BlockAddr) -> impl Iterator<Item = LineAddr> {
        let base = b.0 * self.lines_per_block as u64;
        (base..base + self.lines_per_block as u64).map(LineAddr)
    }

    /// Number of lines a cache of `bytes` capacity holds.
    #[inline]
    pub fn lines_in(&self, bytes: u64) -> u64 {
        bytes / self.line_bytes as u64
    }
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let g = MemGeometry::paper_default();
        assert_eq!(g.line_bytes(), 128);
        assert_eq!(g.lines_per_block(), 4);
        assert_eq!(g.page_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn line_block_page_math() {
        let g = MemGeometry::new(128, 4, 1 << 21);
        let a = Addr(128 * 7 + 5);
        assert_eq!(g.line_of(a), LineAddr(7));
        assert_eq!(g.block_of(LineAddr(7)), BlockAddr(1));
        assert_eq!(g.block_of_addr(a), BlockAddr(1));
        assert_eq!(g.page_of(Addr((1 << 21) + 1)), PageId(1));
        assert_eq!(g.line_base(LineAddr(7)), Addr(896));
    }

    #[test]
    fn page_of_line_consistent_with_page_of_addr() {
        let g = MemGeometry::paper_default();
        for raw in [0u64, 127, 128, 1 << 21, (1 << 22) - 1, 123_456_789] {
            let a = Addr(raw);
            assert_eq!(g.page_of(a), g.page_of_line(g.line_of(a)));
        }
    }

    #[test]
    fn lines_of_block_covers_exactly_the_block() {
        let g = MemGeometry::new(128, 4, 1 << 21);
        let lines: Vec<_> = g.lines_of_block(BlockAddr(3)).collect();
        assert_eq!(
            lines,
            vec![LineAddr(12), LineAddr(13), LineAddr(14), LineAddr(15)]
        );
        for l in lines {
            assert_eq!(g.block_of(l), BlockAddr(3));
        }
    }

    #[test]
    fn lines_in_capacity() {
        let g = MemGeometry::paper_default();
        assert_eq!(g.lines_in(12 * 1024 * 1024 / 4), 24_576); // 3 MB L2 slice
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        MemGeometry::new(100, 4, 1 << 21);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(Addr(16).to_string(), "0x10");
        assert_eq!(LineAddr(2).to_string(), "line:0x2");
        assert_eq!(BlockAddr(2).to_string(), "blk:0x2");
        assert_eq!(PageId(2).to_string(), "page:0x2");
    }
}
