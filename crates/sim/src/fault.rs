//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] describes the faults a run should inject. It is
//! *pure data*: the same plan plus the same engine seed reproduces the
//! same fault sequence bit-for-bit, because probabilistic faults draw
//! from the engine's own SplitMix64 stream and event processing order
//! is deterministic.
//!
//! Fault taxonomy (who consumes which knob):
//!
//! | fault            | consumed by  | expected outcome                   |
//! |------------------|--------------|------------------------------------|
//! | [`LinkDegrade`]  | interconnect | tolerated — runs slower            |
//! | [`LinkStall`]    | interconnect | tolerated — runs slower            |
//! | [`MsgDrop`]      | interconnect | **recovered** — retransmission     |
//! | [`MsgDelay`]     | GPU engine   | tolerated — fences wait it out     |
//! | [`MsgDuplicate`] | GPU engine   | tolerated — re-delivery idempotent |
//! | `flag_delay`     | GPU engine   | tolerated — waiters wake later     |
//! | `drop_store`     | GPU engine   | **detected** — deadlock watchdog   |
//! | [`ReorderInv`]   | GPU engine   | **detected** — version oracle      |
//! | [`LinkDown`]     | interconnect | **reconfigured** — alternate path  |
//! | [`GpmOffline`]   | both         | **reconfigured** — fail-in-place   |
//! | [`GpuOffline`]   | both         | **reconfigured** — fail-in-place   |
//! | [`MsgFlip`]      | interconnect | **recovered** — checksum + resend  |
//! | [`LineFlip`]     | GPU engine   | **recovered/contained** — ECC      |
//! | [`DirFlip`]      | GPU engine   | **recovered** — entry rebuild      |
//!
//! Four outcome classes matter:
//!
//! * *tolerated* faults slow the run down without any protocol help;
//! * *recovered* faults are masked by an explicit recovery mechanism —
//!   [`MsgDrop`] loses messages on the wire, and the interconnect's
//!   reliable-delivery layer (sequence numbers + timeout-driven
//!   retransmission with deterministic exponential backoff) replays them
//!   so the run still converges to the fault-free final state;
//! * *detected* faults are deliberate protocol violations. HMG's
//!   correctness rests on FIFO link ordering and on store/invalidation
//!   counters draining, so breaking either must be *caught*, never
//!   silently survived or hung on: `drop_store` erases a committed
//!   write above the transport (no retransmission can help) and is
//!   caught by the deadlock watchdog; [`ReorderInv`] breaks FIFO
//!   delivery and is caught by the version oracle;
//! * *reconfigured* faults are **permanent**: the component never comes
//!   back, so no amount of retransmission can recover it. The engine
//!   answers with an epoch-based fail-in-place reconfiguration — quiesce
//!   and drain in-flight transactions against the failed component,
//!   re-route fabric traffic around a down link via the second-tier
//!   switch path, re-home directory state off dead GPMs (deterministic
//!   re-hash over the survivors, sharer lists conservatively rebuilt by
//!   broadcast invalidation), and drop addresses whose DRAM partition
//!   died into a per-address degraded no-peer-caching mode. The run
//!   completes with correct data and honestly worse bandwidth;
//!   [`crate::stats::ReconfigStats`] reports the cost.

use crate::error::SimError;

/// Bandwidth degradation of every link during a cycle window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// First cycle (inclusive) of the degraded window.
    pub from: u64,
    /// Last cycle (exclusive) of the degraded window.
    pub until: u64,
    /// Serialization-time multiplier, `>= 1.0` (2.0 = half bandwidth).
    pub factor: f64,
}

/// Extra propagation latency on every link during a cycle window
/// (models a transient stall / retraining event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStall {
    /// First cycle (inclusive) of the stall window.
    pub from: u64,
    /// Last cycle (exclusive) of the stall window.
    pub until: u64,
    /// Extra cycles added to each send started inside the window.
    pub extra: u64,
}

/// Random extra delivery delay on coherence messages (stores and
/// invalidations). Delayed messages keep their ordering obligations,
/// so fences simply wait longer — the outcome is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDelay {
    /// Per-message probability of being delayed, in `[0, 1]`.
    pub prob: f64,
    /// Extra cycles added to a delayed message's delivery.
    pub extra: u64,
}

/// Random duplication of coherence messages (stores and
/// invalidations). Duplicates are flagged so handlers re-apply only
/// idempotent state (version-max commit, re-invalidation) and skip
/// counter bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDuplicate {
    /// Per-message probability of being duplicated, in `[0, 1]`.
    pub prob: f64,
}

/// Random loss of messages on the wire, recovered by the interconnect's
/// reliable-delivery layer: each lost attempt costs a delivery timeout
/// plus exponentially backed-off retransmission, so runs finish slower
/// but converge to the fault-free final memory state. Drop draws come
/// from a dedicated SplitMix64 stream seeded by the plan seed, making
/// the retransmission schedule bit-identical across reruns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDrop {
    /// Per-delivery-attempt probability of loss, in `[0, 1)`. A
    /// probability of 1 would make delivery impossible, so it is
    /// rejected by validation.
    pub prob: f64,
}

/// FIFO-ordering violation: the `nth` store-caused invalidation is
/// delivered `extra` cycles late *without* holding its pending
/// counter, so the producer's release fence completes before the
/// stale copy is removed — exactly the hazard HMG's FIFO assumption
/// exists to prevent. The version oracle (probe) must catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderInv {
    /// 1-based index of the invalidation message to reorder.
    pub nth: u64,
    /// Extra cycles the invalidation is held back.
    pub extra: u64,
}

/// Permanent failure of the direct intra-GPU link between two GPMs of
/// the same GPU. From `at_cycle` on, traffic between the pair is
/// re-routed over the second-tier (inter-GPU switch) path: strictly
/// longer, so per-channel FIFO delivery is preserved and the run
/// converges to the fault-free final state — reconfigured, never lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDown {
    /// Global index of one endpoint GPM.
    pub a: u16,
    /// Global index of the other endpoint GPM (same GPU as `a`).
    pub b: u16,
    /// First cycle at which the link is gone (permanent).
    pub at_cycle: u64,
}

/// Permanent failure of one GPU module: its SMs, L2 slice, directory
/// slice and DRAM partition all go away at `at_cycle`. The engine runs
/// an epoch-based reconfiguration: abort the module's CTAs, drain
/// in-flight transactions against it, re-home pages and directory state
/// onto the survivors, and serve the re-homed addresses in degraded
/// no-peer-caching mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpmOffline {
    /// GPU index.
    pub gpu: u16,
    /// Local GPM index within `gpu`.
    pub gpm: u16,
    /// First cycle at which the module is gone (permanent).
    pub at_cycle: u64,
}

/// Permanent failure of a whole GPU (all of its GPMs at once); the
/// reconfiguration is identical to [`GpmOffline`] applied to every
/// module of the GPU in one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuOffline {
    /// GPU index.
    pub gpu: u16,
    /// First cycle at which the GPU is gone (permanent).
    pub at_cycle: u64,
}

/// Soft-error corruption of in-flight messages: each delivery attempt
/// flips payload/header bits with probability `prob`. With link
/// checksums enabled (the default) a corrupt delivery is detected at
/// the receiver and charged like a lost delivery — one retransmission
/// through the reliable-transport layer, drawn from a dedicated
/// SplitMix64 stream so fault-free runs stay bit-identical. With
/// checksums disabled the corruption is *silent* and counted in
/// `IntegrityStats::silent_corruptions`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgFlip {
    /// Per-delivery-attempt corruption probability, in `[0, 1)`. A
    /// probability of 1 would corrupt every retransmission too, making
    /// delivery impossible, so it is rejected by validation.
    pub prob: f64,
}

/// Soft-error corruption of resident L2 cache lines: at every scrub
/// tick, each GPM's L2 slice takes a flip with probability `prob` in a
/// uniformly chosen resident line. The configured ECC mode decides the
/// outcome — corrected in place (SEC-DED, single-bit), detected and
/// invalidated-then-refetched (clean uncorrectable), poisoned and
/// contained by CTA abort (dirty uncorrectable), or silent wrong data
/// when ECC is off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFlip {
    /// Per-scrub-tick, per-GPM flip probability, in `[0, 1]`.
    pub prob: f64,
}

/// Soft-error corruption of directory entries (sharer/state/version
/// fields): at every scrub tick, each GPM's directory slice takes a
/// flip with probability `prob` in a uniformly chosen resident entry.
/// Correctable flips are fixed by ECC; uncorrectable ones force an
/// entry rebuild through the sticky-broadcast + survivor-L2-scrub path
/// (the fail-in-place machinery); with ECC off the sharer list is
/// silently lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirFlip {
    /// Per-scrub-tick, per-GPM flip probability, in `[0, 1]`.
    pub prob: f64,
}

/// A complete, deterministic fault-injection plan.
///
/// `FaultPlan::default()` injects nothing. Plans are parsed from a
/// compact CLI spec by [`FaultPlan::parse`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the engine-side fault RNG stream (delay/duplicate
    /// draws). Independent of workload seeds.
    pub seed: u64,
    /// Link bandwidth degradation window, if any.
    pub degrade: Option<LinkDegrade>,
    /// Link stall window, if any.
    pub stall: Option<LinkStall>,
    /// Random on-wire message loss (recovered by retransmission), if any.
    pub drop: Option<MsgDrop>,
    /// Random message delay, if any.
    pub delay: Option<MsgDelay>,
    /// Random message duplication, if any.
    pub duplicate: Option<MsgDuplicate>,
    /// Extra cycles added to flag-write propagation (delayed flag), if any.
    pub flag_delay: Option<u64>,
    /// 1-based index of a store message to silently drop, if any.
    pub drop_store: Option<u64>,
    /// FIFO-violating invalidation reordering, if any.
    pub reorder_inv: Option<ReorderInv>,
    /// Protocol-bug injection: an HMG GPU home receiving a system-home
    /// invalidation drops it after invalidating its own slice instead of
    /// forwarding it to the GPM sharers it tracks (the extra Table I
    /// transition). Detected class: a stale copy survives inside the
    /// remote GPU and the coherence checker must observe the stale read.
    pub skip_hier_inv_forward: bool,
    /// Permanent intra-GPU link failure (re-routed second tier), if any.
    pub link_down: Option<LinkDown>,
    /// Permanent GPM failure (fail-in-place reconfiguration), if any.
    pub gpm_offline: Option<GpmOffline>,
    /// Permanent whole-GPU failure (fail-in-place reconfiguration), if any.
    pub gpu_offline: Option<GpuOffline>,
    /// In-flight message corruption (checksum-detected), if any.
    pub flip_msg: Option<MsgFlip>,
    /// Resident L2 line corruption (ECC-detected), if any.
    pub flip_line: Option<LineFlip>,
    /// Directory entry corruption (ECC-detected, rebuild), if any.
    pub flip_dir: Option<DirFlip>,
}

impl FaultPlan {
    /// `true` if the plan injects nothing at all.
    ///
    /// The exhaustive destructuring is deliberate: adding a knob to
    /// [`FaultPlan`] without deciding its emptiness contribution fails
    /// to compile here, instead of the old struct-literal comparison
    /// silently going stale.
    pub fn is_empty(&self) -> bool {
        let FaultPlan {
            seed: _,
            degrade,
            stall,
            drop,
            delay,
            duplicate,
            flag_delay,
            drop_store,
            reorder_inv,
            skip_hier_inv_forward,
            link_down,
            gpm_offline,
            gpu_offline,
            flip_msg,
            flip_line,
            flip_dir,
        } = self;
        degrade.is_none()
            && stall.is_none()
            && drop.is_none()
            && delay.is_none()
            && duplicate.is_none()
            && flag_delay.is_none()
            && drop_store.is_none()
            && reorder_inv.is_none()
            && !skip_hier_inv_forward
            && link_down.is_none()
            && gpm_offline.is_none()
            && gpu_offline.is_none()
            && flip_msg.is_none()
            && flip_line.is_none()
            && flip_dir.is_none()
    }

    /// `true` if any knob targets the interconnect links (a permanent
    /// link failure included: the fabric consumes it).
    pub fn has_link_faults(&self) -> bool {
        self.degrade.is_some()
            || self.stall.is_some()
            || self.drop.is_some()
            || self.link_down.is_some()
    }

    /// `true` if the plan injects any *permanent* (fail-in-place) fault.
    pub fn has_permanent_faults(&self) -> bool {
        self.link_down.is_some() || self.gpm_offline.is_some() || self.gpu_offline.is_some()
    }

    /// `true` if the plan injects any soft-error corruption (bit flips
    /// in messages, L2 lines, or directory entries). The engine arms
    /// the background scrubber only when this holds, so fault-free runs
    /// never pay for it.
    pub fn has_flip_faults(&self) -> bool {
        self.flip_msg.is_some() || self.flip_line.is_some() || self.flip_dir.is_some()
    }

    /// Serialization-time multiplier for a link send starting at
    /// `now` (1.0 outside any degraded window).
    pub fn link_slowdown(&self, now: u64) -> f64 {
        match self.degrade {
            Some(d) if (d.from..d.until).contains(&now) => d.factor,
            _ => 1.0,
        }
    }

    /// Extra link latency for a send starting at `now` (0 outside any
    /// stall window).
    pub fn link_stall_extra(&self, now: u64) -> u64 {
        match self.stall {
            Some(s) if (s.from..s.until).contains(&now) => s.extra,
            _ => 0,
        }
    }

    /// Validate ranges: probabilities in `[0, 1]`, degrade factor
    /// `>= 1`, windows non-inverted, counters non-zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(d) = self.degrade {
            // NaN factors must fail validation, so compare negatively.
            if d.factor < 1.0 || d.factor.is_nan() || d.from >= d.until {
                return Err(SimError::config(format!(
                    "degrade window {}..{} factor {} (need from < until, factor >= 1)",
                    d.from, d.until, d.factor
                )));
            }
        }
        if let Some(s) = self.stall {
            if s.from >= s.until {
                return Err(SimError::config(format!(
                    "stall window {}..{} is empty",
                    s.from, s.until
                )));
            }
        }
        if let Some(d) = self.drop {
            // prob == 1 can never deliver, so the retransmission layer
            // would spin forever; reject it up front.
            if !(0.0..1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "drop probability {} not in [0,1) (1.0 is unrecoverable)",
                    d.prob
                )));
            }
        }
        if let Some(d) = self.delay {
            if !(0.0..=1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "delay probability {} not in [0,1]",
                    d.prob
                )));
            }
        }
        if let Some(d) = self.duplicate {
            if !(0.0..=1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "duplicate probability {} not in [0,1]",
                    d.prob
                )));
            }
        }
        if self.drop_store == Some(0) {
            return Err(SimError::config(
                "drop-store index is 1-based; 0 never fires",
            ));
        }
        if let Some(r) = self.reorder_inv {
            if r.nth == 0 {
                return Err(SimError::config(
                    "reorder-inv index is 1-based; 0 never fires",
                ));
            }
        }
        if let Some(l) = self.link_down {
            // Same-GPU membership needs the topology, so the engine
            // configuration checks it; the self-loop is rejected here.
            if l.a == l.b {
                return Err(SimError::config(format!(
                    "link-down endpoints must differ (got {}-{})",
                    l.a, l.b
                )));
            }
        }
        if let Some(m) = self.flip_msg {
            // prob == 1 corrupts every retransmission too, so the
            // checksum-retry layer could never deliver; reject it.
            if !(0.0..1.0).contains(&m.prob) {
                return Err(SimError::config(format!(
                    "flip-msg probability {} not in [0,1) (1.0 is unrecoverable)",
                    m.prob
                )));
            }
        }
        if let Some(l) = self.flip_line {
            if !(0.0..=1.0).contains(&l.prob) {
                return Err(SimError::config(format!(
                    "flip-line probability {} not in [0,1]",
                    l.prob
                )));
            }
        }
        if let Some(d) = self.flip_dir {
            if !(0.0..=1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "flip-dir probability {} not in [0,1]",
                    d.prob
                )));
            }
        }
        Ok(())
    }

    /// Parse a compact comma-separated fault spec, e.g.
    ///
    /// ```text
    /// degrade=1000..5000/4,stall=2000..2500/300,drop=0.01,delay=0.1/200,
    /// dup=0.05,flag-delay=500,drop-store=3,reorder-inv=1/50000,seed=7,
    /// link-down=0-1@5000,gpm-offline=1.0@7500,gpu-offline=2@9000
    /// ```
    ///
    /// Each clause is `key=value`, except the valueless switch
    /// `skip-hier-fwd` (HMG protocol-bug injection); unknown keys,
    /// malformed numbers and out-of-range values are reported with the
    /// offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, SimError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            // Valueless switches first; everything else is `key=value`.
            if clause == "skip-hier-fwd" {
                plan.skip_hier_inv_forward = true;
                continue;
            }
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| bad(clause, "expected key=value"))?;
            match key.trim() {
                "seed" => plan.seed = num(clause, val)?,
                "degrade" => {
                    let (win, factor) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected FROM..UNTIL/FACTOR"))?;
                    let (from, until) = window(clause, win)?;
                    plan.degrade = Some(LinkDegrade {
                        from,
                        until,
                        factor: float(clause, factor)?,
                    });
                }
                "stall" => {
                    let (win, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected FROM..UNTIL/EXTRA"))?;
                    let (from, until) = window(clause, win)?;
                    plan.stall = Some(LinkStall {
                        from,
                        until,
                        extra: num(clause, extra)?,
                    });
                }
                "delay" => {
                    let (prob, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected PROB/EXTRA"))?;
                    plan.delay = Some(MsgDelay {
                        prob: float(clause, prob)?,
                        extra: num(clause, extra)?,
                    });
                }
                "drop" => {
                    plan.drop = Some(MsgDrop {
                        prob: float(clause, val)?,
                    })
                }
                "dup" => {
                    plan.duplicate = Some(MsgDuplicate {
                        prob: float(clause, val)?,
                    })
                }
                "flag-delay" => plan.flag_delay = Some(num(clause, val)?),
                "drop-store" => plan.drop_store = Some(num(clause, val)?),
                "reorder-inv" => {
                    let (nth, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected NTH/EXTRA"))?;
                    plan.reorder_inv = Some(ReorderInv {
                        nth: num(clause, nth)?,
                        extra: num(clause, extra)?,
                    });
                }
                "link-down" => {
                    let (pair, at) = val
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected A-B@CYCLE"))?;
                    let (a, b) = pair
                        .split_once('-')
                        .ok_or_else(|| bad(clause, "endpoints must be A-B"))?;
                    plan.link_down = Some(LinkDown {
                        a: num(clause, a)? as u16,
                        b: num(clause, b)? as u16,
                        at_cycle: num(clause, at)?,
                    });
                }
                "gpm-offline" => {
                    let (loc, at) = val
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected GPU.GPM@CYCLE"))?;
                    let (gpu, gpm) = loc
                        .split_once('.')
                        .ok_or_else(|| bad(clause, "location must be GPU.GPM"))?;
                    plan.gpm_offline = Some(GpmOffline {
                        gpu: num(clause, gpu)? as u16,
                        gpm: num(clause, gpm)? as u16,
                        at_cycle: num(clause, at)?,
                    });
                }
                "gpu-offline" => {
                    let (gpu, at) = val
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected GPU@CYCLE"))?;
                    plan.gpu_offline = Some(GpuOffline {
                        gpu: num(clause, gpu)? as u16,
                        at_cycle: num(clause, at)?,
                    });
                }
                "flip-msg" => {
                    plan.flip_msg = Some(MsgFlip {
                        prob: float(clause, val)?,
                    })
                }
                "flip-line" => {
                    plan.flip_line = Some(LineFlip {
                        prob: float(clause, val)?,
                    })
                }
                "flip-dir" => {
                    plan.flip_dir = Some(DirFlip {
                        prob: float(clause, val)?,
                    })
                }
                other => {
                    return Err(bad(
                        clause,
                        &format!(
                            "unknown fault `{other}` (known: seed, degrade, stall, drop, delay, \
                             dup, flag-delay, drop-store, reorder-inv, skip-hier-fwd, link-down, \
                             gpm-offline, gpu-offline, flip-msg, flip-line, flip-dir)"
                        ),
                    ));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Inverse of [`FaultPlan::parse`]: serializes the plan back to the
    /// compact comma-separated spec, so a plan can cross a process
    /// boundary (e.g. a supervised sweep cell re-executed in a child).
    /// `FaultPlan::parse(&plan.to_spec())` reproduces the plan exactly.
    pub fn to_spec(&self) -> String {
        let mut clauses: Vec<String> = Vec::new();
        if self.seed != 0 {
            clauses.push(format!("seed={}", self.seed));
        }
        if let Some(d) = self.degrade {
            clauses.push(format!("degrade={}..{}/{}", d.from, d.until, d.factor));
        }
        if let Some(s) = self.stall {
            clauses.push(format!("stall={}..{}/{}", s.from, s.until, s.extra));
        }
        if let Some(d) = self.drop {
            clauses.push(format!("drop={}", d.prob));
        }
        if let Some(d) = self.delay {
            clauses.push(format!("delay={}/{}", d.prob, d.extra));
        }
        if let Some(d) = self.duplicate {
            clauses.push(format!("dup={}", d.prob));
        }
        if let Some(n) = self.flag_delay {
            clauses.push(format!("flag-delay={n}"));
        }
        if let Some(n) = self.drop_store {
            clauses.push(format!("drop-store={n}"));
        }
        if let Some(r) = self.reorder_inv {
            clauses.push(format!("reorder-inv={}/{}", r.nth, r.extra));
        }
        if self.skip_hier_inv_forward {
            clauses.push("skip-hier-fwd".into());
        }
        if let Some(l) = self.link_down {
            clauses.push(format!("link-down={}-{}@{}", l.a, l.b, l.at_cycle));
        }
        if let Some(g) = self.gpm_offline {
            clauses.push(format!("gpm-offline={}.{}@{}", g.gpu, g.gpm, g.at_cycle));
        }
        if let Some(g) = self.gpu_offline {
            clauses.push(format!("gpu-offline={}@{}", g.gpu, g.at_cycle));
        }
        if let Some(m) = self.flip_msg {
            clauses.push(format!("flip-msg={}", m.prob));
        }
        if let Some(l) = self.flip_line {
            clauses.push(format!("flip-line={}", l.prob));
        }
        if let Some(d) = self.flip_dir {
            clauses.push(format!("flip-dir={}", d.prob));
        }
        clauses.join(",")
    }
}

fn bad(clause: &str, why: &str) -> SimError {
    SimError::config(format!("bad fault clause `{clause}`: {why}"))
}

fn num(clause: &str, s: &str) -> Result<u64, SimError> {
    s.trim()
        .parse()
        .map_err(|_| bad(clause, &format!("`{s}` is not an unsigned integer")))
}

fn float(clause: &str, s: &str) -> Result<f64, SimError> {
    s.trim()
        .parse()
        .map_err(|_| bad(clause, &format!("`{s}` is not a number")))
}

fn window(clause: &str, s: &str) -> Result<(u64, u64), SimError> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| bad(clause, "window must be FROM..UNTIL"))?;
    Ok((num(clause, a)?, num(clause, b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(!p.has_link_faults());
        p.validate().unwrap();
        assert_eq!(p.link_slowdown(123), 1.0);
        assert_eq!(p.link_stall_extra(123), 0);
    }

    #[test]
    fn parse_full_spec_roundtrips_fields() {
        let p = FaultPlan::parse(
            "degrade=1000..5000/4,stall=2000..2500/300,drop=0.02,delay=0.1/200,dup=0.05,\
             flag-delay=500,drop-store=3,reorder-inv=1/50000,seed=7",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(
            p.degrade,
            Some(LinkDegrade {
                from: 1000,
                until: 5000,
                factor: 4.0
            })
        );
        assert_eq!(
            p.stall,
            Some(LinkStall {
                from: 2000,
                until: 2500,
                extra: 300
            })
        );
        assert_eq!(p.drop, Some(MsgDrop { prob: 0.02 }));
        assert_eq!(
            p.delay,
            Some(MsgDelay {
                prob: 0.1,
                extra: 200
            })
        );
        assert_eq!(p.duplicate, Some(MsgDuplicate { prob: 0.05 }));
        assert_eq!(p.flag_delay, Some(500));
        assert_eq!(p.drop_store, Some(3));
        assert_eq!(
            p.reorder_inv,
            Some(ReorderInv {
                nth: 1,
                extra: 50000
            })
        );
        assert!(!p.is_empty());
        assert!(p.has_link_faults());
    }

    #[test]
    fn parse_skip_hier_fwd_switch() {
        let p = FaultPlan::parse("skip-hier-fwd,seed=3").unwrap();
        assert!(p.skip_hier_inv_forward);
        assert_eq!(p.seed, 3);
        assert!(!p.is_empty(), "a bug-injection plan is not empty");
        assert!(!FaultPlan::parse("seed=3").unwrap().skip_hier_inv_forward);
    }

    #[test]
    fn window_queries_respect_bounds() {
        let p = FaultPlan::parse("degrade=100..200/2,stall=150..160/40").unwrap();
        assert_eq!(p.link_slowdown(99), 1.0);
        assert_eq!(p.link_slowdown(100), 2.0);
        assert_eq!(p.link_slowdown(199), 2.0);
        assert_eq!(p.link_slowdown(200), 1.0);
        assert_eq!(p.link_stall_extra(149), 0);
        assert_eq!(p.link_stall_extra(155), 40);
        assert_eq!(p.link_stall_extra(160), 0);
    }

    /// Satellite guard: every single knob must flip `is_empty()` on its
    /// own, so a future field added to [`FaultPlan`] (which already
    /// fails compilation in `is_empty`'s destructuring) also gets
    /// exercised here.
    #[test]
    fn every_knob_alone_makes_the_plan_non_empty() {
        let knobs: Vec<(&str, FaultPlan)> = vec![
            (
                "degrade",
                FaultPlan {
                    degrade: Some(LinkDegrade {
                        from: 0,
                        until: 1,
                        factor: 2.0,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "stall",
                FaultPlan {
                    stall: Some(LinkStall {
                        from: 0,
                        until: 1,
                        extra: 5,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "drop",
                FaultPlan {
                    drop: Some(MsgDrop { prob: 0.1 }),
                    ..FaultPlan::default()
                },
            ),
            (
                "delay",
                FaultPlan {
                    delay: Some(MsgDelay {
                        prob: 0.1,
                        extra: 10,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "dup",
                FaultPlan {
                    duplicate: Some(MsgDuplicate { prob: 0.1 }),
                    ..FaultPlan::default()
                },
            ),
            (
                "flag-delay",
                FaultPlan {
                    flag_delay: Some(10),
                    ..FaultPlan::default()
                },
            ),
            (
                "drop-store",
                FaultPlan {
                    drop_store: Some(1),
                    ..FaultPlan::default()
                },
            ),
            (
                "reorder-inv",
                FaultPlan {
                    reorder_inv: Some(ReorderInv { nth: 1, extra: 10 }),
                    ..FaultPlan::default()
                },
            ),
            (
                "skip-hier-fwd",
                FaultPlan {
                    skip_hier_inv_forward: true,
                    ..FaultPlan::default()
                },
            ),
            (
                "link-down",
                FaultPlan {
                    link_down: Some(LinkDown {
                        a: 0,
                        b: 1,
                        at_cycle: 0,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "gpm-offline",
                FaultPlan {
                    gpm_offline: Some(GpmOffline {
                        gpu: 0,
                        gpm: 1,
                        at_cycle: 0,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "gpu-offline",
                FaultPlan {
                    gpu_offline: Some(GpuOffline {
                        gpu: 1,
                        at_cycle: 0,
                    }),
                    ..FaultPlan::default()
                },
            ),
            (
                "flip-msg",
                FaultPlan {
                    flip_msg: Some(MsgFlip { prob: 0.1 }),
                    ..FaultPlan::default()
                },
            ),
            (
                "flip-line",
                FaultPlan {
                    flip_line: Some(LineFlip { prob: 0.1 }),
                    ..FaultPlan::default()
                },
            ),
            (
                "flip-dir",
                FaultPlan {
                    flip_dir: Some(DirFlip { prob: 0.1 }),
                    ..FaultPlan::default()
                },
            ),
        ];
        for (name, plan) in knobs {
            assert!(
                !plan.is_empty(),
                "knob `{name}` must make the plan non-empty"
            );
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        // A non-default seed alone still counts as empty: it only seeds
        // streams nothing draws from.
        assert!(FaultPlan {
            seed: 9,
            ..FaultPlan::default()
        }
        .is_empty());
    }

    #[test]
    fn parse_permanent_faults() {
        let p =
            FaultPlan::parse("link-down=0-1@5000,gpm-offline=1.0@7500,gpu-offline=2@9000").unwrap();
        assert_eq!(
            p.link_down,
            Some(LinkDown {
                a: 0,
                b: 1,
                at_cycle: 5000
            })
        );
        assert_eq!(
            p.gpm_offline,
            Some(GpmOffline {
                gpu: 1,
                gpm: 0,
                at_cycle: 7500
            })
        );
        assert_eq!(
            p.gpu_offline,
            Some(GpuOffline {
                gpu: 2,
                at_cycle: 9000
            })
        );
        assert!(!p.is_empty());
        assert!(p.has_permanent_faults());
        assert!(p.has_link_faults(), "a down link is a link fault");
        assert!(!FaultPlan::default().has_permanent_faults());
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_range() {
        for spec in [
            "nonsense",
            "frobnicate=3",
            "delay=1.5/10",
            "dup=-0.1",
            "drop=1.0",
            "drop=-0.25",
            "degrade=5..5/2",
            "degrade=10..20/0.5",
            "stall=9..3/5",
            "drop-store=0",
            "reorder-inv=0/10",
            "delay=abc/10",
            "degrade=1..2",
            "link-down=0-0@100",
            "link-down=0-1",
            "link-down=3@100",
            "gpm-offline=1@100",
            "gpm-offline=1.0",
            "gpu-offline=abc@5",
            "gpu-offline=1",
            "flip-msg=1.0",
            "flip-msg=-0.1",
            "flip-msg=abc",
            "flip-line=1.5",
            "flip-line=-0.01",
            "flip-dir=2",
            "flip-dir=",
            "flip-line=0.1 trailing",
        ] {
            let e = FaultPlan::parse(spec).unwrap_err();
            assert_eq!(e.kind, crate::error::SimErrorKind::Config, "{spec}: {e}");
            // Parser hardening: the diagnostic names the offending
            // token (the clause itself or its fault-class key).
            let key = spec.split(['=', ',']).next().unwrap_or(spec);
            assert!(
                e.to_string().contains(key.trim_end_matches("-offline")),
                "{spec}: `{e}` should cite `{key}`"
            );
        }
    }

    /// Exhaustive parse/`to_spec` round trip: one spec exercising every
    /// fault class at once (permanent faults and the flip family ride in
    /// separate specs because they are mutually sensible, not exclusive).
    #[test]
    fn every_fault_class_round_trips_through_to_spec() {
        let spec = "seed=11,degrade=10..20/2,stall=30..40/5,drop=0.01,delay=0.2/100,dup=0.02,\
                    flag-delay=50,drop-store=2,reorder-inv=3/400,skip-hier-fwd,\
                    link-down=0-1@500,gpm-offline=1.0@600,gpu-offline=1@700,\
                    flip-msg=0.03,flip-line=0.25,flip-dir=0.125";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.flip_msg, Some(MsgFlip { prob: 0.03 }));
        assert_eq!(plan.flip_line, Some(LineFlip { prob: 0.25 }));
        assert_eq!(plan.flip_dir, Some(DirFlip { prob: 0.125 }));
        assert!(plan.has_flip_faults());
        let reparsed = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(reparsed, plan);
        assert!(!FaultPlan::default().has_flip_faults());
    }

    #[test]
    fn to_spec_round_trips_through_parse() {
        for spec in [
            "",
            "seed=7",
            "degrade=1000..5000/4,stall=2000..2500/300,drop=0.02,delay=0.1/200,dup=0.05,\
             flag-delay=500,drop-store=3,reorder-inv=1/50000,seed=7",
            "skip-hier-fwd,seed=3",
            "link-down=0-1@5000,gpm-offline=1.0@7500,gpu-offline=2@9000",
            "flip-msg=0.02,flip-line=0.1,flip-dir=0.05,seed=4",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            let reparsed = FaultPlan::parse(&plan.to_spec()).unwrap();
            assert_eq!(reparsed, plan, "spec `{spec}` must round-trip");
        }
    }

    #[test]
    fn empty_spec_parses_to_default() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" , ,").unwrap(), FaultPlan::default());
    }
}
