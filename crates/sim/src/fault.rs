//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] describes the faults a run should inject. It is
//! *pure data*: the same plan plus the same engine seed reproduces the
//! same fault sequence bit-for-bit, because probabilistic faults draw
//! from the engine's own SplitMix64 stream and event processing order
//! is deterministic.
//!
//! Fault taxonomy (who consumes which knob):
//!
//! | fault            | consumed by  | expected outcome                   |
//! |------------------|--------------|------------------------------------|
//! | [`LinkDegrade`]  | interconnect | tolerated — runs slower            |
//! | [`LinkStall`]    | interconnect | tolerated — runs slower            |
//! | [`MsgDrop`]      | interconnect | **recovered** — retransmission     |
//! | [`MsgDelay`]     | GPU engine   | tolerated — fences wait it out     |
//! | [`MsgDuplicate`] | GPU engine   | tolerated — re-delivery idempotent |
//! | `flag_delay`     | GPU engine   | tolerated — waiters wake later     |
//! | `drop_store`     | GPU engine   | **detected** — deadlock watchdog   |
//! | [`ReorderInv`]   | GPU engine   | **detected** — version oracle      |
//!
//! Three outcome classes matter:
//!
//! * *tolerated* faults slow the run down without any protocol help;
//! * *recovered* faults are masked by an explicit recovery mechanism —
//!   [`MsgDrop`] loses messages on the wire, and the interconnect's
//!   reliable-delivery layer (sequence numbers + timeout-driven
//!   retransmission with deterministic exponential backoff) replays them
//!   so the run still converges to the fault-free final state;
//! * *detected* faults are deliberate protocol violations. HMG's
//!   correctness rests on FIFO link ordering and on store/invalidation
//!   counters draining, so breaking either must be *caught*, never
//!   silently survived or hung on: `drop_store` erases a committed
//!   write above the transport (no retransmission can help) and is
//!   caught by the deadlock watchdog; [`ReorderInv`] breaks FIFO
//!   delivery and is caught by the version oracle.

use crate::error::SimError;

/// Bandwidth degradation of every link during a cycle window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// First cycle (inclusive) of the degraded window.
    pub from: u64,
    /// Last cycle (exclusive) of the degraded window.
    pub until: u64,
    /// Serialization-time multiplier, `>= 1.0` (2.0 = half bandwidth).
    pub factor: f64,
}

/// Extra propagation latency on every link during a cycle window
/// (models a transient stall / retraining event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStall {
    /// First cycle (inclusive) of the stall window.
    pub from: u64,
    /// Last cycle (exclusive) of the stall window.
    pub until: u64,
    /// Extra cycles added to each send started inside the window.
    pub extra: u64,
}

/// Random extra delivery delay on coherence messages (stores and
/// invalidations). Delayed messages keep their ordering obligations,
/// so fences simply wait longer — the outcome is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDelay {
    /// Per-message probability of being delayed, in `[0, 1]`.
    pub prob: f64,
    /// Extra cycles added to a delayed message's delivery.
    pub extra: u64,
}

/// Random duplication of coherence messages (stores and
/// invalidations). Duplicates are flagged so handlers re-apply only
/// idempotent state (version-max commit, re-invalidation) and skip
/// counter bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDuplicate {
    /// Per-message probability of being duplicated, in `[0, 1]`.
    pub prob: f64,
}

/// Random loss of messages on the wire, recovered by the interconnect's
/// reliable-delivery layer: each lost attempt costs a delivery timeout
/// plus exponentially backed-off retransmission, so runs finish slower
/// but converge to the fault-free final memory state. Drop draws come
/// from a dedicated SplitMix64 stream seeded by the plan seed, making
/// the retransmission schedule bit-identical across reruns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgDrop {
    /// Per-delivery-attempt probability of loss, in `[0, 1)`. A
    /// probability of 1 would make delivery impossible, so it is
    /// rejected by validation.
    pub prob: f64,
}

/// FIFO-ordering violation: the `nth` store-caused invalidation is
/// delivered `extra` cycles late *without* holding its pending
/// counter, so the producer's release fence completes before the
/// stale copy is removed — exactly the hazard HMG's FIFO assumption
/// exists to prevent. The version oracle (probe) must catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderInv {
    /// 1-based index of the invalidation message to reorder.
    pub nth: u64,
    /// Extra cycles the invalidation is held back.
    pub extra: u64,
}

/// A complete, deterministic fault-injection plan.
///
/// `FaultPlan::default()` injects nothing. Plans are parsed from a
/// compact CLI spec by [`FaultPlan::parse`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the engine-side fault RNG stream (delay/duplicate
    /// draws). Independent of workload seeds.
    pub seed: u64,
    /// Link bandwidth degradation window, if any.
    pub degrade: Option<LinkDegrade>,
    /// Link stall window, if any.
    pub stall: Option<LinkStall>,
    /// Random on-wire message loss (recovered by retransmission), if any.
    pub drop: Option<MsgDrop>,
    /// Random message delay, if any.
    pub delay: Option<MsgDelay>,
    /// Random message duplication, if any.
    pub duplicate: Option<MsgDuplicate>,
    /// Extra cycles added to flag-write propagation (delayed flag), if any.
    pub flag_delay: Option<u64>,
    /// 1-based index of a store message to silently drop, if any.
    pub drop_store: Option<u64>,
    /// FIFO-violating invalidation reordering, if any.
    pub reorder_inv: Option<ReorderInv>,
    /// Protocol-bug injection: an HMG GPU home receiving a system-home
    /// invalidation drops it after invalidating its own slice instead of
    /// forwarding it to the GPM sharers it tracks (the extra Table I
    /// transition). Detected class: a stale copy survives inside the
    /// remote GPU and the coherence checker must observe the stale read.
    pub skip_hier_inv_forward: bool,
}

impl FaultPlan {
    /// `true` if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self
            == FaultPlan {
                seed: self.seed,
                ..FaultPlan::default()
            }
    }

    /// `true` if any knob targets the interconnect links.
    pub fn has_link_faults(&self) -> bool {
        self.degrade.is_some() || self.stall.is_some() || self.drop.is_some()
    }

    /// Serialization-time multiplier for a link send starting at
    /// `now` (1.0 outside any degraded window).
    pub fn link_slowdown(&self, now: u64) -> f64 {
        match self.degrade {
            Some(d) if (d.from..d.until).contains(&now) => d.factor,
            _ => 1.0,
        }
    }

    /// Extra link latency for a send starting at `now` (0 outside any
    /// stall window).
    pub fn link_stall_extra(&self, now: u64) -> u64 {
        match self.stall {
            Some(s) if (s.from..s.until).contains(&now) => s.extra,
            _ => 0,
        }
    }

    /// Validate ranges: probabilities in `[0, 1]`, degrade factor
    /// `>= 1`, windows non-inverted, counters non-zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(d) = self.degrade {
            // NaN factors must fail validation, so compare negatively.
            if d.factor < 1.0 || d.factor.is_nan() || d.from >= d.until {
                return Err(SimError::config(format!(
                    "degrade window {}..{} factor {} (need from < until, factor >= 1)",
                    d.from, d.until, d.factor
                )));
            }
        }
        if let Some(s) = self.stall {
            if s.from >= s.until {
                return Err(SimError::config(format!(
                    "stall window {}..{} is empty",
                    s.from, s.until
                )));
            }
        }
        if let Some(d) = self.drop {
            // prob == 1 can never deliver, so the retransmission layer
            // would spin forever; reject it up front.
            if !(0.0..1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "drop probability {} not in [0,1) (1.0 is unrecoverable)",
                    d.prob
                )));
            }
        }
        if let Some(d) = self.delay {
            if !(0.0..=1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "delay probability {} not in [0,1]",
                    d.prob
                )));
            }
        }
        if let Some(d) = self.duplicate {
            if !(0.0..=1.0).contains(&d.prob) {
                return Err(SimError::config(format!(
                    "duplicate probability {} not in [0,1]",
                    d.prob
                )));
            }
        }
        if self.drop_store == Some(0) {
            return Err(SimError::config(
                "drop-store index is 1-based; 0 never fires",
            ));
        }
        if let Some(r) = self.reorder_inv {
            if r.nth == 0 {
                return Err(SimError::config(
                    "reorder-inv index is 1-based; 0 never fires",
                ));
            }
        }
        Ok(())
    }

    /// Parse a compact comma-separated fault spec, e.g.
    ///
    /// ```text
    /// degrade=1000..5000/4,stall=2000..2500/300,drop=0.01,delay=0.1/200,
    /// dup=0.05,flag-delay=500,drop-store=3,reorder-inv=1/50000,seed=7
    /// ```
    ///
    /// Each clause is `key=value`, except the valueless switch
    /// `skip-hier-fwd` (HMG protocol-bug injection); unknown keys,
    /// malformed numbers and out-of-range values are reported with the
    /// offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, SimError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            // Valueless switches first; everything else is `key=value`.
            if clause == "skip-hier-fwd" {
                plan.skip_hier_inv_forward = true;
                continue;
            }
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| bad(clause, "expected key=value"))?;
            match key.trim() {
                "seed" => plan.seed = num(clause, val)?,
                "degrade" => {
                    let (win, factor) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected FROM..UNTIL/FACTOR"))?;
                    let (from, until) = window(clause, win)?;
                    plan.degrade = Some(LinkDegrade {
                        from,
                        until,
                        factor: float(clause, factor)?,
                    });
                }
                "stall" => {
                    let (win, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected FROM..UNTIL/EXTRA"))?;
                    let (from, until) = window(clause, win)?;
                    plan.stall = Some(LinkStall {
                        from,
                        until,
                        extra: num(clause, extra)?,
                    });
                }
                "delay" => {
                    let (prob, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected PROB/EXTRA"))?;
                    plan.delay = Some(MsgDelay {
                        prob: float(clause, prob)?,
                        extra: num(clause, extra)?,
                    });
                }
                "drop" => {
                    plan.drop = Some(MsgDrop {
                        prob: float(clause, val)?,
                    })
                }
                "dup" => {
                    plan.duplicate = Some(MsgDuplicate {
                        prob: float(clause, val)?,
                    })
                }
                "flag-delay" => plan.flag_delay = Some(num(clause, val)?),
                "drop-store" => plan.drop_store = Some(num(clause, val)?),
                "reorder-inv" => {
                    let (nth, extra) = val
                        .split_once('/')
                        .ok_or_else(|| bad(clause, "expected NTH/EXTRA"))?;
                    plan.reorder_inv = Some(ReorderInv {
                        nth: num(clause, nth)?,
                        extra: num(clause, extra)?,
                    });
                }
                other => {
                    return Err(bad(
                        clause,
                        &format!(
                            "unknown fault `{other}` (known: seed, degrade, stall, drop, delay, \
                             dup, flag-delay, drop-store, reorder-inv, skip-hier-fwd)"
                        ),
                    ));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn bad(clause: &str, why: &str) -> SimError {
    SimError::config(format!("bad fault clause `{clause}`: {why}"))
}

fn num(clause: &str, s: &str) -> Result<u64, SimError> {
    s.trim()
        .parse()
        .map_err(|_| bad(clause, &format!("`{s}` is not an unsigned integer")))
}

fn float(clause: &str, s: &str) -> Result<f64, SimError> {
    s.trim()
        .parse()
        .map_err(|_| bad(clause, &format!("`{s}` is not a number")))
}

fn window(clause: &str, s: &str) -> Result<(u64, u64), SimError> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| bad(clause, "window must be FROM..UNTIL"))?;
    Ok((num(clause, a)?, num(clause, b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(!p.has_link_faults());
        p.validate().unwrap();
        assert_eq!(p.link_slowdown(123), 1.0);
        assert_eq!(p.link_stall_extra(123), 0);
    }

    #[test]
    fn parse_full_spec_roundtrips_fields() {
        let p = FaultPlan::parse(
            "degrade=1000..5000/4,stall=2000..2500/300,drop=0.02,delay=0.1/200,dup=0.05,\
             flag-delay=500,drop-store=3,reorder-inv=1/50000,seed=7",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(
            p.degrade,
            Some(LinkDegrade {
                from: 1000,
                until: 5000,
                factor: 4.0
            })
        );
        assert_eq!(
            p.stall,
            Some(LinkStall {
                from: 2000,
                until: 2500,
                extra: 300
            })
        );
        assert_eq!(p.drop, Some(MsgDrop { prob: 0.02 }));
        assert_eq!(
            p.delay,
            Some(MsgDelay {
                prob: 0.1,
                extra: 200
            })
        );
        assert_eq!(p.duplicate, Some(MsgDuplicate { prob: 0.05 }));
        assert_eq!(p.flag_delay, Some(500));
        assert_eq!(p.drop_store, Some(3));
        assert_eq!(
            p.reorder_inv,
            Some(ReorderInv {
                nth: 1,
                extra: 50000
            })
        );
        assert!(!p.is_empty());
        assert!(p.has_link_faults());
    }

    #[test]
    fn parse_skip_hier_fwd_switch() {
        let p = FaultPlan::parse("skip-hier-fwd,seed=3").unwrap();
        assert!(p.skip_hier_inv_forward);
        assert_eq!(p.seed, 3);
        assert!(!p.is_empty(), "a bug-injection plan is not empty");
        assert!(!FaultPlan::parse("seed=3").unwrap().skip_hier_inv_forward);
    }

    #[test]
    fn window_queries_respect_bounds() {
        let p = FaultPlan::parse("degrade=100..200/2,stall=150..160/40").unwrap();
        assert_eq!(p.link_slowdown(99), 1.0);
        assert_eq!(p.link_slowdown(100), 2.0);
        assert_eq!(p.link_slowdown(199), 2.0);
        assert_eq!(p.link_slowdown(200), 1.0);
        assert_eq!(p.link_stall_extra(149), 0);
        assert_eq!(p.link_stall_extra(155), 40);
        assert_eq!(p.link_stall_extra(160), 0);
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_range() {
        for spec in [
            "nonsense",
            "frobnicate=3",
            "delay=1.5/10",
            "dup=-0.1",
            "drop=1.0",
            "drop=-0.25",
            "degrade=5..5/2",
            "degrade=10..20/0.5",
            "stall=9..3/5",
            "drop-store=0",
            "reorder-inv=0/10",
            "delay=abc/10",
            "degrade=1..2",
        ] {
            let e = FaultPlan::parse(spec).unwrap_err();
            assert_eq!(e.kind, crate::error::SimErrorKind::Config, "{spec}: {e}");
        }
    }

    #[test]
    fn empty_spec_parses_to_default() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" , ,").unwrap(), FaultPlan::default());
    }
}
