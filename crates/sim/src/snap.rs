//! Crash-consistent binary snapshots of live simulation state.
//!
//! A *snapshot* captures the complete deterministic state of a running
//! simulation at an event boundary so that a killed, crashed, or
//! timed-out cell can resume mid-run instead of restarting from cycle 0
//! (DESIGN.md §14). The format is a versioned, std-only binary layout —
//! explicit [`SnapshotWrite`]/[`SnapshotRead`] implementations, no
//! serde — with per-section fnv1a64 checksums, so a torn or bit-flipped
//! file is *refused with a typed error*, never silently accepted.
//!
//! Layout of an encoded snapshot:
//!
//! ```text
//! magic    8 B   "HMGSNAP1"
//! version  4 B   format version (little-endian u32)
//! identity 8 B   fnv1a64 of the producing cell's identity string
//! cycle    8 B   simulated cycle at which the state was captured
//! count    4 B   number of sections
//! per section:
//!   name_len u16, name bytes, payload_len u64, payload, fnv1a64(payload)
//! ```
//!
//! All integers are little-endian. Floating-point state round-trips
//! through `to_bits`/`from_bits` so restored timing is bit-identical.
//!
//! [`SnapshotStore`] double-buffers the last two snapshots
//! (`<base>.a` / `<base>.b`, written with atomic tmp+rename), giving the
//! resume path its fallback ladder: newest valid → older valid → from
//! scratch.

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::collect::{FlatKey, FlatMap, FlatSet};
use crate::time::Cycle;

/// Leading bytes of every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"HMGSNAP1";

/// Current snapshot format version. Bumped on any layout change; a
/// mismatch is refused with [`SnapError::Version`] rather than decoded
/// on a guess. v2: `RunMetrics` gained `deferred_reqs` (phase-priority
/// directory arbitration).
pub const SNAP_VERSION: u32 = 2;

/// FNV-1a 64-bit hash, the per-section integrity checksum.
///
/// Matches the checksum used by the sweep checkpoint rows so the two
/// on-disk formats share one well-understood primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a snapshot could not be loaded or decoded.
///
/// Every variant is a *refusal*: the resume path treats any of these as
/// "this file is unusable, fall back" and never panics on malformed
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended inside a value.
    UnexpectedEof {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The file does not begin with [`SNAP_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAP_VERSION`].
    Version {
        /// The version found in the header.
        found: u32,
    },
    /// A section's payload does not match its stored checksum.
    Checksum {
        /// Name of the corrupt section.
        section: String,
    },
    /// The snapshot was produced by a different cell configuration
    /// (different workload/protocol/tweak/faults/seed) and must not be
    /// restored into this one.
    Identity {
        /// Identity hash the restoring cell expects.
        expected: u64,
        /// Identity hash stored in the snapshot.
        found: u64,
    },
    /// A required section is absent.
    MissingSection {
        /// Name of the missing section.
        name: String,
    },
    /// The bytes decoded, but the decoded value is impossible
    /// (out-of-range discriminant, length overflow, ...).
    Malformed(String),
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { context } => {
                write!(f, "snapshot truncated while decoding {context}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::Version { found } => write!(
                f,
                "snapshot format version {found} is not the supported {SNAP_VERSION}"
            ),
            SnapError::Checksum { section } => {
                write!(f, "snapshot section '{section}' failed its checksum")
            }
            SnapError::Identity { expected, found } => write!(
                f,
                "snapshot identity {found:#018x} does not match this cell ({expected:#018x})"
            ),
            SnapError::MissingSection { name } => {
                write!(f, "snapshot is missing required section '{name}'")
            }
            SnapError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
            SnapError::Io(what) => write!(f, "snapshot i/o error: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e.to_string())
    }
}

/// Little-endian byte sink for snapshot encoding.
///
/// # Example
///
/// ```
/// use hmg_sim::snap::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
///
/// let mut w = SnapWriter::new();
/// 7u64.write_snap(&mut w);
/// vec![1u32, 2, 3].write_snap(&mut w);
/// let bytes = w.into_bytes();
/// let mut r = SnapReader::new(&bytes);
/// assert_eq!(u64::read_snap(&mut r).unwrap(), 7);
/// assert_eq!(Vec::<u32>::read_snap(&mut r).unwrap(), vec![1, 2, 3]);
/// assert!(r.is_exhausted());
/// ```
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded snapshot section; every read is
/// bounds-checked and returns a typed error instead of panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    #[inline]
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::UnexpectedEof { context })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its exact bit pattern.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n, "bytes")
    }

    /// Reads a `u64` length prefix, refusing lengths that exceed the
    /// remaining bytes divided by `min_elem_bytes` (an impossible
    /// length, i.e. a corrupt prefix).
    #[inline]
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.get_u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap.max(1).saturating_mul(2) {
            return Err(SnapError::Malformed(format!(
                "length prefix {n} exceeds remaining payload"
            )));
        }
        usize::try_from(n).map_err(|_| SnapError::Malformed(format!("length prefix {n} overflows")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed — decoders check this to refuse
    /// payloads with trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// Types that can serialize their complete state into a snapshot.
pub trait SnapshotWrite {
    /// Appends this value's encoded state to `w`.
    fn write_snap(&self, w: &mut SnapWriter);
}

/// Types that can reconstruct themselves from snapshot bytes.
pub trait SnapshotRead: Sized {
    /// Decodes one value, consuming exactly the bytes
    /// [`SnapshotWrite::write_snap`] produced for it.
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_int {
    ($($t:ty => $put:ident / $get:ident),*) => {$(
        impl SnapshotWrite for $t {
            #[inline]
            fn write_snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
        }
        impl SnapshotRead for $t {
            #[inline]
            fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    )*};
}
snap_int!(u8 => put_u8/get_u8, u16 => put_u16/get_u16, u32 => put_u32/get_u32, u64 => put_u64/get_u64, f64 => put_f64/get_f64);

impl SnapshotWrite for usize {
    #[inline]
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
}
impl SnapshotRead for usize {
    #[inline]
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed(format!("usize {v} overflows")))
    }
}

impl SnapshotWrite for bool {
    #[inline]
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
}
impl SnapshotRead for bool {
    #[inline]
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Malformed(format!("bool byte {b}"))),
        }
    }
}

impl SnapshotWrite for Cycle {
    #[inline]
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
}
impl SnapshotRead for Cycle {
    #[inline]
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Cycle(r.get_u64()?))
    }
}

macro_rules! snap_newtype_u64 {
    ($($t:ty),*) => {$(
        impl SnapshotWrite for $t {
            #[inline]
            fn write_snap(&self, w: &mut SnapWriter) {
                w.put_u64(self.0);
            }
        }
        impl SnapshotRead for $t {
            #[inline]
            fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(Self(r.get_u64()?))
            }
        }
    )*};
}
snap_newtype_u64!(
    crate::addr::Addr,
    crate::addr::LineAddr,
    crate::addr::BlockAddr,
    crate::addr::PageId
);

impl<T: SnapshotWrite> SnapshotWrite for Option<T> {
    fn write_snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.write_snap(w);
            }
        }
    }
}
impl<T: SnapshotRead> SnapshotRead for Option<T> {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read_snap(r)?)),
            b => Err(SnapError::Malformed(format!("Option tag {b}"))),
        }
    }
}

impl<T: SnapshotWrite> SnapshotWrite for Vec<T> {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.write_snap(w);
        }
    }
}
impl<T: SnapshotRead> SnapshotRead for Vec<T> {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len(1)?;
        let mut v = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            v.push(T::read_snap(r)?);
        }
        Ok(v)
    }
}

impl<T: SnapshotWrite> SnapshotWrite for VecDeque<T> {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.write_snap(w);
        }
    }
}
impl<T: SnapshotRead> SnapshotRead for VecDeque<T> {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::read_snap(r)?.into())
    }
}

impl SnapshotWrite for String {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
}
impl SnapshotRead for String {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len(1)?;
        let bytes = r.get_bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Malformed("non-utf8 string".into()))
    }
}

impl<A: SnapshotWrite, B: SnapshotWrite> SnapshotWrite for (A, B) {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.0.write_snap(w);
        self.1.write_snap(w);
    }
}
impl<A: SnapshotRead, B: SnapshotRead> SnapshotRead for (A, B) {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::read_snap(r)?, B::read_snap(r)?))
    }
}

impl<A: SnapshotWrite, B: SnapshotWrite, C: SnapshotWrite> SnapshotWrite for (A, B, C) {
    fn write_snap(&self, w: &mut SnapWriter) {
        self.0.write_snap(w);
        self.1.write_snap(w);
        self.2.write_snap(w);
    }
}
impl<A: SnapshotRead, B: SnapshotRead, C: SnapshotRead> SnapshotRead for (A, B, C) {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::read_snap(r)?, B::read_snap(r)?, C::read_snap(r)?))
    }
}

impl<T: SnapshotWrite, const N: usize> SnapshotWrite for [T; N] {
    fn write_snap(&self, w: &mut SnapWriter) {
        for v in self {
            v.write_snap(w);
        }
    }
}
impl<T: SnapshotRead, const N: usize> SnapshotRead for [T; N] {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::read_snap(r)?);
        }
        v.try_into()
            .map_err(|_| SnapError::Malformed("array length".into()))
    }
}

// FlatMap/FlatSet round-trip through their dense entry order, which is
// the only observable order they expose: re-inserting entries in dense
// order reproduces the exact iteration order (and therefore identical
// downstream behavior, including `remove`'s swap-removal positions).
impl<K: FlatKey + SnapshotWrite, V: SnapshotWrite> SnapshotWrite for FlatMap<K, V> {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self.iter() {
            k.write_snap(w);
            v.write_snap(w);
        }
    }
}
impl<K: FlatKey + SnapshotRead, V: SnapshotRead> SnapshotRead for FlatMap<K, V> {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len(1)?;
        let mut m = FlatMap::new();
        for _ in 0..n {
            let k = K::read_snap(r)?;
            let v = V::read_snap(r)?;
            if m.insert(k, v).is_some() {
                return Err(SnapError::Malformed("duplicate FlatMap key".into()));
            }
        }
        Ok(m)
    }
}

impl<K: FlatKey + SnapshotWrite> SnapshotWrite for FlatSet<K> {
    fn write_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for k in self.iter() {
            k.write_snap(w);
        }
    }
}
impl<K: FlatKey + SnapshotRead> SnapshotRead for FlatSet<K> {
    fn read_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len(1)?;
        let mut s = FlatSet::new();
        for _ in 0..n {
            if !s.insert(K::read_snap(r)?) {
                return Err(SnapError::Malformed("duplicate FlatSet key".into()));
            }
        }
        Ok(s)
    }
}

/// One decoded snapshot: identity + capture cycle + named sections.
///
/// Producers fill sections with [`Snapshot::add_section`]; consumers
/// pull them back out with [`Snapshot::section`], which hands back a
/// checksum-verified [`SnapReader`].
#[derive(Debug)]
pub struct Snapshot {
    /// Identity hash of the producing cell (see [`SnapError::Identity`]).
    pub identity: u64,
    /// Simulated cycle at which the state was captured.
    pub cycle: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot for `identity` captured at `cycle`.
    pub fn new(identity: u64, cycle: u64) -> Self {
        Snapshot {
            identity,
            cycle,
            sections: Vec::new(),
        }
    }

    /// Appends a named section holding `w`'s bytes.
    pub fn add_section(&mut self, name: &str, w: SnapWriter) {
        self.sections.push((name.to_string(), w.into_bytes()));
    }

    /// A reader over the named section's payload.
    pub fn section(&self, name: &str) -> Result<SnapReader<'_>, SnapError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bytes)| SnapReader::new(bytes))
            .ok_or_else(|| SnapError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Names of all sections, in write order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Encodes the snapshot into its on-disk byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            40 + self
                .sections
                .iter()
                .map(|(n, b)| n.len() + b.len() + 18)
                .sum::<usize>(),
        );
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&self.identity.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&section_checksum(name.as_bytes(), payload).to_le_bytes());
        }
        out
    }

    /// Decodes and fully validates an encoded snapshot: magic, version,
    /// every section checksum, and (when given) the expected identity.
    pub fn decode(bytes: &[u8], expected_identity: Option<u64>) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.get_bytes(8).map_err(|_| SnapError::BadMagic)? != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.get_u32().map_err(|_| SnapError::UnexpectedEof {
            context: "header version",
        })?;
        if version != SNAP_VERSION {
            return Err(SnapError::Version { found: version });
        }
        let identity = r.get_u64()?;
        if let Some(expected) = expected_identity {
            if identity != expected {
                return Err(SnapError::Identity {
                    expected,
                    found: identity,
                });
            }
        }
        let cycle = r.get_u64()?;
        let count = r.get_u32()?;
        let mut sections = Vec::with_capacity(count.min(64) as usize);
        for _ in 0..count {
            let name_len = r.get_u16()? as usize;
            let name = String::from_utf8(r.get_bytes(name_len)?.to_vec())
                .map_err(|_| SnapError::Malformed("non-utf8 section name".into()))?;
            let payload_len = r.get_u64()?;
            let payload_len = usize::try_from(payload_len)
                .ok()
                .filter(|&n| n <= r.remaining())
                .ok_or(SnapError::UnexpectedEof {
                    context: "section payload",
                })?;
            let payload = r.get_bytes(payload_len)?.to_vec();
            let stored = r.get_u64()?;
            if section_checksum(name.as_bytes(), &payload) != stored {
                return Err(SnapError::Checksum { section: name });
            }
            sections.push((name, payload));
        }
        if !r.is_exhausted() {
            return Err(SnapError::Malformed(format!(
                "{} trailing bytes after final section",
                r.remaining()
            )));
        }
        Ok(Snapshot {
            identity,
            cycle,
            sections,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes land in
    /// `<path>.tmp` and are renamed into place, so a reader (or a kill
    /// at any point) sees either the old file or the new one — never a
    /// torn mix. The data is deliberately *not* fsynced: preemption
    /// (SIGKILL, OOM-kill, timeout-kill) leaves the page cache intact,
    /// and against power loss a half-written slot is caught by the
    /// per-section checksums and the double-buffered fallback ladder —
    /// so the fsync would buy nothing but a large per-capture stall on
    /// slow filesystems.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapError> {
        use std::io::Write;
        let tmp = tmp_path(path);
        // Stream the encoded layout section by section instead of going
        // through `encode()`: snapshots run to many MB, and skipping the
        // single contiguous output buffer halves the capture's transient
        // memory footprint.
        let mut f = std::io::BufWriter::new(fs::File::create(&tmp)?);
        f.write_all(&SNAP_MAGIC)?;
        f.write_all(&SNAP_VERSION.to_le_bytes())?;
        f.write_all(&self.identity.to_le_bytes())?;
        f.write_all(&self.cycle.to_le_bytes())?;
        f.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (name, payload) in &self.sections {
            f.write_all(&(name.len() as u16).to_le_bytes())?;
            f.write_all(name.as_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(payload)?;
            f.write_all(&section_checksum(name.as_bytes(), payload).to_le_bytes())?;
        }
        f.into_inner().map_err(|e| SnapError::Io(e.to_string()))?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and fully validates a snapshot file.
    pub fn load(path: &Path, expected_identity: Option<u64>) -> Result<Self, SnapError> {
        let bytes = fs::read(path)?;
        Snapshot::decode(&bytes, expected_identity)
    }

    /// Reads just the header of `path`: `(identity, cycle)`. Used to
    /// pick the older double-buffer slot without decoding payloads; any
    /// failure reads as "no usable header". Only the fixed-size header
    /// is read from disk — snapshots run to many MB and `save` probes
    /// both slots on every capture, so a whole-file read here would
    /// dominate the capture cost.
    pub fn probe(path: &Path) -> Option<(u64, u64)> {
        use std::io::Read;
        let mut bytes = [0u8; 28];
        fs::File::open(path).ok()?.read_exact(&mut bytes).ok()?;
        let mut r = SnapReader::new(&bytes);
        if r.get_bytes(8).ok()? != SNAP_MAGIC || r.get_u32().ok()? != SNAP_VERSION {
            return None;
        }
        let identity = r.get_u64().ok()?;
        let cycle = r.get_u64().ok()?;
        Some((identity, cycle))
    }
}

/// Per-section checksum covering both the section name and its
/// payload, so a flipped byte anywhere in a section is refused.
/// fnv1a64, fed the name bytes then the payload bytes; the two tight
/// slice loops (rather than one chained iterator) matter because the
/// payload runs to many MB per capture.
fn section_checksum(name: &[u8], payload: &[u8]) -> u64 {
    fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    fnv1a64(fnv1a64(0xcbf2_9ce4_8422_2325, name), payload)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Last-two double-buffered snapshot storage: `<base>.a` and
/// `<base>.b`, each written atomically, with the *older* slot always
/// the one overwritten. A crash during a write therefore never damages
/// the newest complete snapshot, and the loader's fallback ladder is
/// newest valid → older valid → none.
///
/// # Example
///
/// ```no_run
/// use hmg_sim::snap::{Snapshot, SnapshotStore};
/// use std::path::PathBuf;
///
/// let store = SnapshotStore::new(PathBuf::from("/tmp/cell.snap"));
/// store.save(&Snapshot::new(0xabcd, 1000)).unwrap();
/// store.save(&Snapshot::new(0xabcd, 2000)).unwrap();
/// let (best, rejected) = store.load_latest(0xabcd);
/// assert_eq!(best.unwrap().0.cycle, 2000);
/// assert!(rejected.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    base: PathBuf,
}

impl SnapshotStore {
    /// A store rooted at `base` (slot files are `<base>.a`/`<base>.b`).
    pub fn new(base: impl Into<PathBuf>) -> Self {
        SnapshotStore { base: base.into() }
    }

    /// The two slot paths, in fixed order.
    pub fn slots(&self) -> [PathBuf; 2] {
        let slot = |suffix: &str| {
            let mut os = self.base.as_os_str().to_os_string();
            os.push(suffix);
            PathBuf::from(os)
        };
        [slot(".a"), slot(".b")]
    }

    /// Saves `snap` into the slot whose current contents are oldest
    /// (missing or unreadable slots count as oldest of all). Returns
    /// the path written.
    pub fn save(&self, snap: &Snapshot) -> Result<PathBuf, SnapError> {
        if let Some(dir) = self.base.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let slots = self.slots();
        // Prefer a slot with no usable header; otherwise the stale one.
        let target = slots
            .iter()
            .min_by_key(|p| match Snapshot::probe(p) {
                None => (0u8, 0u64),
                Some((_, cycle)) => (1, cycle),
            })
            // audit:allow(panic-path): min over a fixed two-element
            // array is always Some.
            .expect("two slots")
            .clone();
        snap.write_atomic(&target)?;
        Ok(target)
    }

    /// Loads the newest fully valid snapshot matching
    /// `expected_identity`. Returns it (with its path) plus the typed
    /// reasons every other slot was rejected — the caller logs those to
    /// make the fallback ladder visible.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(
        &self,
        expected_identity: u64,
    ) -> (Option<(Snapshot, PathBuf)>, Vec<(PathBuf, SnapError)>) {
        let mut best: Option<(Snapshot, PathBuf)> = None;
        let mut rejected = Vec::new();
        for path in self.slots() {
            if !path.exists() {
                continue;
            }
            match Snapshot::load(&path, Some(expected_identity)) {
                Ok(snap) => {
                    let newer = best
                        .as_ref()
                        .map(|(b, _)| snap.cycle > b.cycle)
                        .unwrap_or(true);
                    if newer {
                        if let Some(old) = best.replace((snap, path)) {
                            // The older-but-valid snapshot is not an
                            // error; only report genuinely bad slots.
                            drop(old);
                        }
                    }
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        (best, rejected)
    }

    /// Removes both slots (fresh-start cleanup between unrelated runs).
    pub fn clear(&self) {
        for path in self.slots() {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hmg-snap-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        0xabu8.write_snap(&mut w);
        0x1234u16.write_snap(&mut w);
        0xdead_beefu32.write_snap(&mut w);
        u64::MAX.write_snap(&mut w);
        true.write_snap(&mut w);
        (-0.0f64).write_snap(&mut w);
        Cycle(77).write_snap(&mut w);
        Some(5u64).write_snap(&mut w);
        Option::<u64>::None.write_snap(&mut w);
        "héllo".to_string().write_snap(&mut w);
        (1u32, 2u64).write_snap(&mut w);
        [9u64, 8, 7].write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u8::read_snap(&mut r).unwrap(), 0xab);
        assert_eq!(u16::read_snap(&mut r).unwrap(), 0x1234);
        assert_eq!(u32::read_snap(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(u64::read_snap(&mut r).unwrap(), u64::MAX);
        assert!(bool::read_snap(&mut r).unwrap());
        assert_eq!(
            f64::read_snap(&mut r).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(Cycle::read_snap(&mut r).unwrap(), Cycle(77));
        assert_eq!(Option::<u64>::read_snap(&mut r).unwrap(), Some(5));
        assert_eq!(Option::<u64>::read_snap(&mut r).unwrap(), None);
        assert_eq!(String::read_snap(&mut r).unwrap(), "héllo");
        assert_eq!(<(u32, u64)>::read_snap(&mut r).unwrap(), (1, 2));
        assert_eq!(<[u64; 3]>::read_snap(&mut r).unwrap(), [9, 8, 7]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn flat_collections_preserve_dense_order() {
        let mut m: FlatMap<u64, u32> = FlatMap::new();
        for i in 0..100u64 {
            m.insert(i * 3, i as u32);
        }
        for i in (0..100u64).step_by(4) {
            m.remove(&(i * 3)); // perturb dense order via swap-removal
        }
        let mut w = SnapWriter::new();
        m.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let m2 = FlatMap::<u64, u32>::read_snap(&mut r).unwrap();
        let a: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = m2.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b, "iteration order must survive the round trip");

        let mut s: FlatSet<u64> = FlatSet::new();
        s.insert(5);
        s.insert(1);
        s.insert(9);
        s.remove(&5);
        let mut w = SnapWriter::new();
        s.write_snap(&mut w);
        let bytes = w.into_bytes();
        let s2 = FlatSet::<u64>::read_snap(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(
            s.iter().copied().collect::<Vec<_>>(),
            s2.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = SnapWriter::new();
        12345u64.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert!(matches!(
            u64::read_snap(&mut r),
            Err(SnapError::UnexpectedEof { .. })
        ));
        // A corrupt length prefix is refused, not allocated.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Vec::<u64>::read_snap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
    }

    fn sample_snapshot(identity: u64, cycle: u64) -> Snapshot {
        let mut snap = Snapshot::new(identity, cycle);
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].write_snap(&mut w);
        snap.add_section("numbers", w);
        let mut w = SnapWriter::new();
        "state".to_string().write_snap(&mut w);
        snap.add_section("label", w);
        snap
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample_snapshot(0x1122, 9876);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes, Some(0x1122)).unwrap();
        assert_eq!(back.identity, 0x1122);
        assert_eq!(back.cycle, 9876);
        let mut r = back.section("numbers").unwrap();
        assert_eq!(Vec::<u64>::read_snap(&mut r).unwrap(), vec![1, 2, 3]);
        let mut r = back.section("label").unwrap();
        assert_eq!(String::read_snap(&mut r).unwrap(), "state");
        assert!(matches!(
            back.section("missing"),
            Err(SnapError::MissingSection { .. })
        ));
    }

    #[test]
    fn decode_refuses_bad_magic_version_identity_and_truncation() {
        let snap = sample_snapshot(7, 100);
        let good = snap.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Snapshot::decode(&bad, None),
            Err(SnapError::BadMagic)
        ));

        let mut bad = good.clone();
        bad[8] = 99; // version field
        assert!(matches!(
            Snapshot::decode(&bad, None),
            Err(SnapError::Version { found: _ })
        ));

        assert!(matches!(
            Snapshot::decode(&good, Some(8)),
            Err(SnapError::Identity {
                expected: 8,
                found: 7
            })
        ));

        for cut in [3, 11, 27, good.len() - 1] {
            let e = Snapshot::decode(&good[..cut], None).unwrap_err();
            assert!(
                matches!(
                    e,
                    SnapError::UnexpectedEof { .. }
                        | SnapError::BadMagic
                        | SnapError::Checksum { .. }
                ),
                "cut at {cut}: {e}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_refused() {
        let snap = sample_snapshot(7, 100);
        let good = snap.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            if bad == good {
                continue;
            }
            // Either the decode is refused, or (for a flip inside the
            // identity/cycle header fields) the identity check or the
            // caller's cycle sanity rejects it: here we just require
            // no panic and detection of every payload/checksum flip.
            if let Ok(ok) = Snapshot::decode(&bad, Some(7)) {
                // Only the cycle field (bytes 20..28) is not covered
                // by a checksum; its integrity is enforced by the
                // engine's restore-time cycle validation.
                assert!((20..28).contains(&i), "undetected flip at byte {i}");
                assert_ne!(ok.cycle, snap.cycle);
            }
        }
    }

    #[test]
    fn store_double_buffers_and_survives_corruption() {
        let dir = tmpdir("store");
        let store = SnapshotStore::new(dir.join("cell.snap"));
        assert!(store.load_latest(1).0.is_none());

        store.save(&sample_snapshot(1, 100)).unwrap();
        store.save(&sample_snapshot(1, 200)).unwrap();
        let (best, rejected) = store.load_latest(1);
        assert_eq!(best.as_ref().unwrap().0.cycle, 200);
        assert!(rejected.is_empty());

        // A third save overwrites the *older* slot.
        store.save(&sample_snapshot(1, 300)).unwrap();
        let (best, _) = store.load_latest(1);
        assert_eq!(best.unwrap().0.cycle, 300);
        let cycles: Vec<u64> = store
            .slots()
            .iter()
            .filter_map(|p| Snapshot::probe(p).map(|(_, c)| c))
            .collect();
        assert_eq!(cycles.iter().copied().max(), Some(300));
        assert!(cycles.contains(&200), "previous snapshot retained");

        // Corrupt the newest slot: the loader falls back to the older
        // one and reports the typed rejection.
        let newest = store
            .slots()
            .into_iter()
            .max_by_key(|p| Snapshot::probe(p).map(|(_, c)| c))
            .unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (best, rejected) = store.load_latest(1);
        assert_eq!(best.unwrap().0.cycle, 200, "fell back to older slot");
        assert_eq!(rejected.len(), 1);
        assert!(matches!(rejected[0].1, SnapError::Checksum { .. }));

        // Stale identity: both slots refused, clean fallback to none.
        let (best, rejected) = store.load_latest(2);
        assert!(best.is_none());
        assert_eq!(rejected.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = tmpdir("atomic");
        let path = dir.join("x.snap.a");
        sample_snapshot(3, 50).write_atomic(&path).unwrap();
        assert!(path.exists());
        assert!(!tmp_path(&path).exists());
        assert_eq!(Snapshot::probe(&path), Some((3, 50)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
