//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in GPU core clock cycles.
///
/// `Cycle` is a transparent newtype over `u64`; it exists so that cycle
/// counts cannot be accidentally mixed with byte counts, entry counts, or
/// other `u64` quantities flowing through the simulator.
///
/// # Example
///
/// ```
/// use hmg_sim::Cycle;
///
/// let t = Cycle(100) + Cycle(30);
/// assert_eq!(t, Cycle(130));
/// assert_eq!(t - Cycle(130), Cycle(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero, the start of every simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The latest representable time; used as "never" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating subtraction: returns `Cycle::ZERO` rather than wrapping.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Converts a cycle count at `freq_ghz` into seconds of simulated time.
    #[inline]
    pub fn to_seconds(self, freq_ghz: f64) -> f64 {
        self.0 as f64 / (freq_ghz * 1e9)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
        let mut c = Cycle(1);
        c += Cycle(2);
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(5).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(5).min(Cycle(9)), Cycle(5));
        assert_eq!(Cycle::ZERO, Cycle(0));
        assert!(Cycle::MAX > Cycle(1 << 62));
    }

    #[test]
    fn saturating_sub_does_not_wrap() {
        assert_eq!(Cycle(3).saturating_sub(Cycle(10)), Cycle::ZERO);
        assert_eq!(Cycle(10).saturating_sub(Cycle(3)), Cycle(7));
    }

    #[test]
    fn seconds_conversion() {
        // 1.3e9 cycles at 1.3 GHz is exactly one second.
        let c = Cycle(1_300_000_000);
        assert!((c.to_seconds(1.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(42).to_string(), "42 cyc");
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }
}
