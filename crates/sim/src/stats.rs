//! Counters and statistics helpers used across the evaluation.

use std::fmt;

/// A named monotone event counter.
///
/// # Example
///
/// ```
/// use hmg_sim::stats::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean over an online stream of samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// The mean of all samples pushed so far, or 0.0 if none.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Arithmetic mean of a slice; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice of positive values; the paper reports speedup
/// geomeans across the workload suite (Figs. 2, 8, 12–14).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Used for the Fig. 7 simulator-correlation experiment. Returns 0.0 when
/// either series has zero variance or fewer than two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson over mismatched lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Mean absolute relative error of `measured` against `reference`,
/// mirroring the "average absolute error" reported for Fig. 7.
///
/// # Panics
///
/// Panics if the slices have different lengths or a reference value is 0.
pub fn mean_abs_rel_err(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len());
    if measured.is_empty() {
        return 0.0;
    }
    let total: f64 = measured
        .iter()
        .zip(reference)
        .map(|(&m, &r)| {
            assert!(r != 0.0, "reference value must be nonzero");
            ((m - r) / r).abs()
        })
        .sum();
    total / measured.len() as f64
}

/// Cost accounting for fail-in-place reconfiguration epochs (permanent
/// faults: [`crate::fault::LinkDown`], [`crate::fault::GpmOffline`],
/// [`crate::fault::GpuOffline`]).
///
/// Every field is a pure function of (plan, trace, seed): the
/// reconfiguration protocol is deterministic, so two runs of the same
/// plan must report bit-identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Reconfiguration epochs entered (one per activated permanent fault).
    pub epochs: u64,
    /// In-flight transactions against a failed component that were
    /// drained at delivery: dropped (dead endpoint) or re-issued toward
    /// the re-homed destination.
    pub drained_txns: u64,
    /// Directory entries that lived on a failed GPM and were re-homed
    /// onto survivors with conservatively rebuilt (broadcast) sharers.
    pub rehomed_blocks: u64,
    /// Pages whose system home was re-hashed onto a surviving GPM.
    pub rehomed_pages: u64,
    /// Pages serving in degraded no-peer-caching mode (their DRAM
    /// partition failed).
    pub degraded_pages: u64,
    /// Modeled failure-detection downtime: the delivery-timeout
    /// escalation the reliable transport charges before declaring a
    /// component dead (`fail_escalation_attempts` backed-off timeouts).
    pub downtime_cycles: u64,
    /// CTAs aborted because their GPM went offline.
    pub aborted_ctas: u64,
    /// Stale peer copies scrubbed by the conservative broadcast
    /// invalidation rebuild.
    pub scrubbed_lines: u64,
}

impl ReconfigStats {
    /// `true` if no reconfiguration happened.
    pub fn is_zero(&self) -> bool {
        *self == ReconfigStats::default()
    }
}

impl fmt::Display for ReconfigStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reconfig_epochs={} drained_txns={} rehomed_blocks={} rehomed_pages={} \
             degraded_pages={} downtime_cycles={} aborted_ctas={} scrubbed_lines={}",
            self.epochs,
            self.drained_txns,
            self.rehomed_blocks,
            self.rehomed_pages,
            self.degraded_pages,
            self.downtime_cycles,
            self.aborted_ctas,
            self.scrubbed_lines
        )
    }
}

/// End-to-end data-integrity accounting for soft-error injection
/// ([`crate::fault::MsgFlip`], [`crate::fault::LineFlip`],
/// [`crate::fault::DirFlip`]).
///
/// The detection stack (link checksums, parity/SEC-DED ECC, poison
/// propagation, background scrubbing) must leave every injected flip
/// *detected-and-recovered* or *detected-and-contained*. The books
/// balance exactly:
///
/// ```text
/// flips_msg + flips_line + flips_dir ==
///     checksum_retransmits + corrected + refetched_lines
///     + rebuilt_dir_entries + poisoned + silent_corruptions
/// ```
///
/// and `silent_corruptions == 0` whenever checksums and ECC are
/// enabled (the tier-1 invariant). Every field is a pure function of
/// (plan, trace, seed), so two runs of the same plan report
/// bit-identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// In-flight message corruptions injected on the fabric.
    pub flips_msg: u64,
    /// Resident L2 line corruptions injected.
    pub flips_line: u64,
    /// Directory entry corruptions injected.
    pub flips_dir: u64,
    /// Corrupt deliveries caught by the per-message checksum and
    /// re-requested through the reliable-transport retry path.
    pub checksum_retransmits: u64,
    /// Single-bit errors fixed in place by SEC-DED (at access time or
    /// by the scrubber), on L2 lines and directory entries.
    pub corrected: u64,
    /// Detected-uncorrectable *clean* L2 lines whose copy was discarded
    /// so the next access refetches from owner/DRAM via the ordinary
    /// miss path (includes faulty copies destroyed by invalidation,
    /// eviction, or overwrite before the error was ever consumed).
    pub refetched_lines: u64,
    /// Detected-uncorrectable directory entries rebuilt through the
    /// sticky-broadcast + survivor-L2-scrub path.
    pub rebuilt_dir_entries: u64,
    /// Detected-uncorrectable *dirty* L2 lines: the only up-to-date
    /// copy is lost, so the value is poisoned and contained instead of
    /// served.
    pub poisoned: u64,
    /// CTAs aborted (with flag salvage) after consuming a poisoned
    /// value.
    pub aborted_ctas: u64,
    /// Faults retired by the periodic background scrubber (rather than
    /// at access time), plus survivor-L2 copies scrubbed during
    /// directory entry rebuilds. Overlaps `corrected`/`refetched_lines`
    /// by design: it attributes *where* recovery happened.
    pub scrubbed: u64,
    /// Flips that were never detected or contained — wrong data the
    /// system could have served. Must be zero whenever checksums and
    /// ECC are enabled; nonzero only when detection is deliberately
    /// disabled (the adversarial proof that the injector is real).
    pub silent_corruptions: u64,
}

impl IntegrityStats {
    /// `true` if no flip was injected and nothing was recovered.
    pub fn is_zero(&self) -> bool {
        *self == IntegrityStats::default()
    }

    /// Total flips injected across all three targets.
    pub fn flips(&self) -> u64 {
        self.flips_msg + self.flips_line + self.flips_dir
    }

    /// Total flips accounted for by a detection/recovery/containment
    /// outcome. Equals [`IntegrityStats::flips`] when the books
    /// balance.
    pub fn accounted(&self) -> u64 {
        self.checksum_retransmits
            + self.corrected
            + self.refetched_lines
            + self.rebuilt_dir_entries
            + self.poisoned
            + self.silent_corruptions
    }
}

impl fmt::Display for IntegrityStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flips_msg={} flips_line={} flips_dir={} checksum_retransmits={} corrected={} \
             refetched_lines={} rebuilt_dir_entries={} poisoned={} aborted_ctas={} scrubbed={} \
             silent_corruptions={}",
            self.flips_msg,
            self.flips_line,
            self.flips_dir,
            self.checksum_retransmits,
            self.corrected,
            self.refetched_lines,
            self.rebuilt_dir_entries,
            self.poisoned,
            self.aborted_ctas,
            self.scrubbed,
            self.silent_corruptions
        )
    }
}

impl crate::snap::SnapshotWrite for ReconfigStats {
    fn write_snap(&self, w: &mut crate::snap::SnapWriter) {
        for v in [
            self.epochs,
            self.drained_txns,
            self.rehomed_blocks,
            self.rehomed_pages,
            self.degraded_pages,
            self.downtime_cycles,
            self.aborted_ctas,
            self.scrubbed_lines,
        ] {
            w.put_u64(v);
        }
    }
}

impl crate::snap::SnapshotRead for ReconfigStats {
    fn read_snap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(ReconfigStats {
            epochs: r.get_u64()?,
            drained_txns: r.get_u64()?,
            rehomed_blocks: r.get_u64()?,
            rehomed_pages: r.get_u64()?,
            degraded_pages: r.get_u64()?,
            downtime_cycles: r.get_u64()?,
            aborted_ctas: r.get_u64()?,
            scrubbed_lines: r.get_u64()?,
        })
    }
}

impl crate::snap::SnapshotWrite for IntegrityStats {
    fn write_snap(&self, w: &mut crate::snap::SnapWriter) {
        for v in [
            self.flips_msg,
            self.flips_line,
            self.flips_dir,
            self.checksum_retransmits,
            self.corrected,
            self.refetched_lines,
            self.rebuilt_dir_entries,
            self.poisoned,
            self.aborted_ctas,
            self.scrubbed,
            self.silent_corruptions,
        ] {
            w.put_u64(v);
        }
    }
}

impl crate::snap::SnapshotRead for IntegrityStats {
    fn read_snap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(IntegrityStats {
            flips_msg: r.get_u64()?,
            flips_line: r.get_u64()?,
            flips_dir: r.get_u64()?,
            checksum_retransmits: r.get_u64()?,
            corrected: r.get_u64()?,
            refetched_lines: r.get_u64()?,
            rebuilt_dir_entries: r.get_u64()?,
            poisoned: r.get_u64()?,
            aborted_ctas: r.get_u64()?,
            scrubbed: r.get_u64()?,
            silent_corruptions: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut rm = RunningMean::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), 4);
        assert!((rm.mean() - mean(&xs)).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(RunningMean::new().mean(), 0.0);
    }

    #[test]
    fn geomean_simple() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let dn = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &dn) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn integrity_stats_balance_and_zero() {
        let z = IntegrityStats::default();
        assert!(z.is_zero());
        assert_eq!(z.flips(), 0);
        assert_eq!(z.accounted(), 0);
        let s = IntegrityStats {
            flips_msg: 3,
            flips_line: 4,
            flips_dir: 2,
            checksum_retransmits: 3,
            corrected: 3,
            refetched_lines: 2,
            rebuilt_dir_entries: 1,
            poisoned: 0,
            aborted_ctas: 0,
            scrubbed: 2,
            silent_corruptions: 0,
        };
        assert!(!s.is_zero());
        assert_eq!(s.flips(), 9);
        assert_eq!(s.accounted(), 9);
        // Every counter appears in the one-line display (greppable, and
        // the stats-registration lint requires it).
        let line = s.to_string();
        for field in [
            "flips_msg=3",
            "flips_line=4",
            "flips_dir=2",
            "checksum_retransmits=3",
            "corrected=3",
            "refetched_lines=2",
            "rebuilt_dir_entries=1",
            "poisoned=0",
            "aborted_ctas=0",
            "scrubbed=2",
            "silent_corruptions=0",
        ] {
            assert!(line.contains(field), "{line} missing {field}");
        }
    }

    #[test]
    fn mean_abs_rel_err_basic() {
        let e = mean_abs_rel_err(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(mean_abs_rel_err(&[], &[]), 0.0);
    }
}
