//! Randomized property tests for the DES kernel: event ordering, RNG
//! distribution sanity, and statistics identities.
//!
//! These were originally written against the `proptest` crate; they now
//! drive the same properties from the in-repo SplitMix64 [`Rng`] so the
//! workspace builds with no external dependencies (offline registries).

use hmg_sim::stats::{geomean, mean, pearson};
use hmg_sim::{Cycle, EventQueue, Rng};

const CASES: u64 = 64;

/// Pops come out in nondecreasing time order with FIFO ties, for any
/// push schedule.
#[test]
fn event_queue_total_order() {
    for case in 0..CASES {
        let mut r = Rng::new(0xE0E0 + case);
        let n = r.gen_range(1, 300) as usize;
        let times: Vec<u64> = (0..n).map(|_| r.gen_range(0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            assert_eq!(at, Cycle(t));
            if let Some((pt, pi)) = prev {
                assert!(pt < t || (pt == t && pi < i), "order violated");
            }
            prev = Some((t, i));
        }
    }
}

/// Interleaved push/pop never yields an event earlier than the last
/// popped one.
#[test]
fn event_queue_causality() {
    for case in 0..CASES {
        let mut r = Rng::new(0xCA5A + case);
        let steps = r.gen_range(1, 200);
        let mut q = EventQueue::new();
        let mut last = Cycle::ZERO;
        for _ in 0..steps {
            let dt = r.gen_range(0, 100);
            let pop = r.gen_bool(0.5);
            q.push(last + Cycle(dt), ());
            if pop {
                if let Some((at, ())) = q.pop() {
                    assert!(at >= last);
                    last = at;
                }
            }
        }
    }
}

/// The PRNG's range sampling is always in bounds and deterministic
/// per seed.
#[test]
fn rng_range_and_determinism() {
    for case in 0..CASES {
        let mut meta = Rng::new(0x5EED ^ case.wrapping_mul(0x9E37_79B9));
        let seed = meta.next_u64();
        let lo = meta.gen_range(0, 1000);
        let width = meta.gen_range(1, 1000);
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(lo, lo + width);
            let y = b.gen_range(lo, lo + width);
            assert_eq!(x, y);
            assert!(x >= lo && x < lo + width);
        }
    }
}

/// Zipf samples stay in the domain for any exponent in [0, 2].
#[test]
fn zipf_in_domain() {
    for case in 0..CASES {
        let mut meta = Rng::new(0x21FF + case);
        let seed = meta.next_u64();
        let n = meta.gen_range(1, 100_000);
        let s = meta.gen_range(0, 20) as f64 / 10.0;
        let mut r = Rng::new(seed);
        for _ in 0..20 {
            assert!(r.gen_zipf(n, s) < n);
        }
    }
}

/// Geomean lies between min and max; mean is translation-equivariant.
#[test]
fn stats_identities() {
    for case in 0..CASES {
        let mut r = Rng::new(0x57A7 + case);
        let n = r.gen_range(1, 50) as usize;
        let xs: Vec<f64> = (0..n).map(|_| 0.01 + r.gen_f64() * 99.99).collect();
        let g = geomean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            g >= lo * 0.999 && g <= hi * 1.001,
            "g={g} not in [{lo}, {hi}]"
        );
        let shifted: Vec<f64> = xs.iter().map(|x| x + 5.0).collect();
        assert!((mean(&shifted) - mean(&xs) - 5.0).abs() < 1e-9);
    }
}

/// Pearson correlation is symmetric, bounded, and scale-invariant.
#[test]
fn pearson_properties() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9EA2 + case);
        let n = rng.gen_range(3, 50) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 200.0 - 100.0).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 200.0 - 100.0).collect();
        let scale = 0.1 + rng.gen_f64() * 9.9;
        let r = pearson(&xs, &ys);
        assert!((-1.0001..=1.0001).contains(&r), "r={r}");
        assert!((pearson(&ys, &xs) - r).abs() < 1e-9, "symmetry");
        let xs_scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        assert!(
            (pearson(&xs_scaled, &ys) - r).abs() < 1e-6,
            "scale invariance"
        );
    }
}
