//! Property-based tests for the DES kernel: event ordering, RNG
//! distribution sanity, and statistics identities.

use proptest::prelude::*;

use hmg_sim::stats::{geomean, mean, pearson};
use hmg_sim::{Cycle, EventQueue, Rng};

proptest! {
    /// Pops come out in nondecreasing time order with FIFO ties, for any
    /// push schedule.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, Cycle(t));
            if let Some((pt, pi)) = prev {
                prop_assert!(pt < t || (pt == t && pi < i), "order violated");
            }
            prev = Some((t, i));
        }
    }

    /// Interleaved push/pop never yields an event earlier than the last
    /// popped one.
    #[test]
    fn event_queue_causality(script in proptest::collection::vec((0u64..100, any::<bool>()), 1..200)) {
        let mut q = EventQueue::new();
        let mut last = Cycle::ZERO;
        for &(dt, pop) in &script {
            q.push(last + Cycle(dt), ());
            if pop {
                if let Some((at, ())) = q.pop() {
                    prop_assert!(at >= last);
                    last = at;
                }
            }
        }
    }

    /// The PRNG's range sampling is always in bounds and deterministic
    /// per seed.
    #[test]
    fn rng_range_and_determinism(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(lo, lo + width);
            let y = b.gen_range(lo, lo + width);
            prop_assert_eq!(x, y);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    /// Zipf samples stay in the domain for any exponent in [0, 2].
    #[test]
    fn zipf_in_domain(seed in any::<u64>(), n in 1u64..100_000, s_times_ten in 0u32..20) {
        let mut r = Rng::new(seed);
        let s = s_times_ten as f64 / 10.0;
        for _ in 0..20 {
            prop_assert!(r.gen_zipf(n, s) < n);
        }
    }

    /// Geomean lies between min and max; mean is translation-equivariant.
    #[test]
    fn stats_identities(xs in proptest::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001, "g={g} not in [{lo}, {hi}]");
        let shifted: Vec<f64> = xs.iter().map(|x| x + 5.0).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - 5.0).abs() < 1e-9);
    }

    /// Pearson correlation is symmetric, bounded, and scale-invariant.
    #[test]
    fn pearson_properties(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..50),
        scale in 0.1f64..10.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0001..=1.0001).contains(&r), "r={r}");
        prop_assert!((pearson(&ys, &xs) - r).abs() < 1e-9, "symmetry");
        let xs_scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((pearson(&xs_scaled, &ys) - r).abs() < 1e-6, "scale invariance");
    }
}
