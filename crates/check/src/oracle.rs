//! The axiomatic oracle: an independent executable model of the
//! paper's scoped, non-multi-copy-atomic memory model (PAPER.md §III),
//! evaluated against the engine's version probe.
//!
//! The engine gives every write to a line a unique, globally ordered
//! version number (the per-line write serialization the directory
//! provides, §IV-B), and records the version every load/atomic of the
//! probed line observes. The oracle derives, per program, the set of
//! observation vectors the memory model allows and asserts
//! `observed ⊆ allowed`. It shares **no** state with the engine: rules
//! are computed from the program text alone, so a protocol bug cannot
//! corrupt both sides.
//!
//! One rule per model invariant (see docs/CHECKING.md for the
//! cross-reference to the paper):
//!
//! * **R1 liveness** — every run completes without a `SimError`.
//! * **R2 write serialization** — no load observes a version greater
//!   than the number of writes to the line.
//! * **R3 kernel-boundary visibility** — the implicit `.sys`
//!   release/acquire at kernel boundaries makes the final kernel's
//!   readers agree on one committed version in the allowed range.
//! * **R4 same-address ordering (phased)** — when threads run in
//!   separate kernels, loads observe versions within the window their
//!   phase allows, and each atomic observes exactly its own write's
//!   version (RMW atomicity at the home node).
//! * **R5 per-location coherence (coRR, phased, fault-free)** — one
//!   SM's loads of the line never observe decreasing versions.
//! * **R6 single committed state** — the final committed memory equals
//!   the model's prediction (every written line at its last version),
//!   independent of protocol, schedule perturbation, and probe target.
//! * **R7 probe completeness** — every load/atomic of the probed line
//!   is observed exactly once per SM (nothing lost, nothing invented).
//! * **R8 spec admissibility** — every directory transition the run
//!   executed lies in the guarded-action spec's legal-row set for the
//!   protocol variant (`ProtocolSpec::legal`), and the engine's runtime
//!   conformance replay saw zero mismatches. The admissible set is
//!   *derived from the spec rows*, not hand-listed here, so a spec edit
//!   reshapes the oracle automatically.

use hmg::prelude::{ProtocolKind, RunMetrics, SimError};
use hmg::protocol::{row_of, ProtocolSpec, NUM_ROWS};

use crate::program::{LOp, Program};

/// How the program's threads are mapped onto kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All threads in one kernel: true concurrency, weakest oracle.
    Concurrent,
    /// One kernel per thread (ascending GPM): kernel boundaries are
    /// implicit `.sys` synchronization, so the oracle is much sharper.
    Phased,
}

impl Mode {
    /// Both modes, in checking order.
    pub const ALL: [Mode; 2] = [Mode::Concurrent, Mode::Phased];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Concurrent => "concurrent",
            Mode::Phased => "phased",
        }
    }
}

/// Everything the oracle needs to judge one engine run.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx<'a> {
    /// The canonical program that produced the trace.
    pub program: &'a Program,
    /// Kernel mapping used.
    pub mode: Mode,
    /// The probed address index.
    pub addr: u8,
    /// Whether the fault plan perturbed message timing (delay/dup).
    /// Fault-free runs admit the sharpest rules.
    pub fault_free: bool,
    /// Protocol under check; selects which spec rows R8 admits.
    pub protocol: ProtocolKind,
}

/// Line index (in `probe_line` units) backing each symbolic address:
/// line 0 and line 4 are distinct directory blocks of the same page.
pub const ADDR_LINES: [u64; 2] = [0, 4];

/// Flat SM indices on the `small_test` machine: GPM g's first SM.
fn sm_of_gpm(gpm: u8) -> u32 {
    u32::from(gpm) * 2
}

/// The committed-state digest the model predicts: FNV-1a over
/// `(line, final version)` in ascending line order, one entry per
/// *written* line (the engine's documented `state_digest` layout).
pub fn expected_digest(p: &Program) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lines: Vec<(u64, u64)> = p
        .used_addrs()
        .into_iter()
        .filter_map(|a| {
            let n = p.writes_to(a);
            (n > 0).then_some((ADDR_LINES[a as usize], n))
        })
        .collect();
    lines.sort_unstable();
    let mut h = FNV_OFFSET;
    for (l, v) in lines {
        for b in l.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Expected probe-record count per flat SM (R7): one homing load at
/// SM 0, the thread's own loads/atomics of the probed address, and one
/// final-kernel load per GPM.
fn expected_counts(ctx: &RunCtx) -> [u64; 8] {
    let mut e = [0u64; 8];
    e[0] += 1; // homing kernel, GPM0
    for t in &ctx.program.threads {
        e[sm_of_gpm(t.gpm) as usize] += t
            .ops
            .iter()
            .filter(|op| op.observes() && op.addr() == Some(ctx.addr))
            .count() as u64;
    }
    for g in 0..4u8 {
        e[sm_of_gpm(g) as usize] += 1; // final kernel
    }
    e
}

/// Judges one run. Returns the violated rules (empty = allowed).
pub fn validate(ctx: &RunCtx, result: &Result<RunMetrics, SimError>) -> Vec<String> {
    let m = match result {
        Ok(m) => m,
        Err(e) => return vec![format!("R1 liveness: run failed: {e}")],
    };
    let mut viol = Vec::new();
    let n_a = ctx.program.writes_to(ctx.addr);

    // R2: write serialization bounds every observation.
    for &(sm, v) in &m.probe {
        if v > n_a {
            viol.push(format!(
                "R2 write-serialization: sm{sm} observed version {v} of a line written {n_a} times"
            ));
        }
    }

    // R6: the committed state is the model's unique final state.
    let want = expected_digest(ctx.program);
    if m.state_digest != want {
        viol.push(format!(
            "R6 committed-state: digest {:#018x}, model predicts {want:#018x}",
            m.state_digest
        ));
    }

    // R8: the run's directory transitions all lie in the spec's
    // legal-row set for this variant, and the conformance replay (which
    // re-derives every executed transition from the same spec) agrees.
    let spec = ProtocolSpec::of(ctx.protocol == ProtocolKind::Hmg, Default::default());
    if m.table.mismatches > 0 {
        viol.push(format!(
            "R8 spec-admissibility: {} directory transition(s) disagreed with the \
             guarded-action spec at runtime",
            m.table.mismatches
        ));
    }
    for i in 0..NUM_ROWS {
        let (s, e) = row_of(i);
        if m.table.rows[i] > 0 && !spec.legal(s, e) {
            viol.push(format!(
                "R8 spec-admissibility: the run executed ({s:?}, {e:?}) {} time(s), a cell \
                 the {} spec leaves undefined",
                m.table.rows[i],
                if ctx.protocol == ProtocolKind::Hmg {
                    "HMG"
                } else {
                    "flat"
                }
            ));
        }
    }

    // R7: exactly the expected observations, per SM. Structure checks
    // below rely on this, so stop here if it fails.
    let expected = expected_counts(ctx);
    let mut got = [0u64; 8];
    for &(sm, _) in &m.probe {
        if sm < 8 {
            got[sm as usize] += 1;
        }
    }
    if got != expected {
        viol.push(format!(
            "R7 probe-completeness: per-SM record counts {got:?}, expected {expected:?}"
        ));
        return viol;
    }
    if m.probe.first() != Some(&(0, 0)) {
        viol.push(format!(
            "R7 probe-completeness: homing load recorded {:?}, expected (0, 0)",
            m.probe.first()
        ));
        return viol;
    }

    // R3: the final kernel's four readers agree on an allowed version.
    let finals = &m.probe[m.probe.len() - 4..];
    let fv = finals[0].1;
    if finals.iter().any(|&(_, v)| v != fv) {
        viol.push(format!(
            "R3 kernel-boundary-visibility: final readers disagree: {finals:?}"
        ));
    } else {
        let (lo, hi) = final_range(ctx, n_a);
        if !(lo..=hi).contains(&fv) {
            viol.push(format!(
                "R3 kernel-boundary-visibility: final version {fv} outside allowed [{lo}, {hi}]"
            ));
        }
    }

    if ctx.mode == Mode::Phased {
        validate_phased(ctx, m, &mut viol);
    }
    viol
}

/// Allowed range for the final kernel's agreed version.
fn final_range(ctx: &RunCtx, n_a: u64) -> (u64, u64) {
    if n_a == 0 {
        return (0, 0);
    }
    match ctx.mode {
        // Concurrent writers commit in any serialization; the home keeps
        // the last *arrival*, so any written version may be final.
        Mode::Concurrent => (1, n_a),
        Mode::Phased => {
            // Writes of completed phases are ordered by the kernel
            // boundary, so only the last writing phase's versions can
            // be final; fault-free runs deliver in issue order, making
            // the very last write the unique final version.
            let floor = last_phase_floor(ctx.program, ctx.addr) + 1;
            if ctx.fault_free {
                (n_a, n_a)
            } else {
                (floor, n_a)
            }
        }
    }
}

/// Number of writes to `addr` committed before the last writing phase
/// starts (0 if no phase writes it).
fn last_phase_floor(p: &Program, addr: u8) -> u64 {
    let mut before = 0u64;
    let mut floor = 0u64;
    for t in &p.threads {
        let w = t
            .ops
            .iter()
            .filter(|op| op.writes() && op.addr() == Some(addr))
            .count() as u64;
        if w > 0 {
            floor = before;
        }
        before += w;
    }
    floor
}

/// Phased-mode structural rules R4 and R5.
fn validate_phased(ctx: &RunCtx, m: &RunMetrics, viol: &mut Vec<String>) {
    let a = ctx.addr;
    // Per-SM record streams, in completion order.
    let mut streams: [Vec<u64>; 8] = Default::default();
    for &(sm, v) in &m.probe {
        streams[sm as usize].push(v);
    }
    // Strip the homing record (first at SM 0) and the final-kernel
    // record (last at each GPM's first SM); what remains per SM is its
    // thread's own observations.
    streams[0].remove(0);
    for g in 0..4u8 {
        streams[sm_of_gpm(g) as usize].pop();
    }

    let mut committed_before = 0u64; // writes to `a` in earlier phases
    let mut load_floor = 0u64; // version every load of `a` must reach
    for t in &ctx.program.threads {
        let stream = &streams[sm_of_gpm(t.gpm) as usize];
        let mut exact_atomics = Vec::new();
        let mut w_before = 0u64;
        let mut has_atomic_on_a = false;
        for op in &t.ops {
            if op.addr() != Some(a) {
                continue;
            }
            if let LOp::Atom(..) = op {
                // RMW atomicity: the atomic is the (w_before+1)-th
                // write of this phase and observes its own version.
                exact_atomics.push(committed_before + w_before + 1);
                has_atomic_on_a = true;
            }
            if op.writes() {
                w_before += 1;
            }
        }
        let w_phase = w_before;

        // R4: atomics match exactly; loads fall inside the phase window.
        let mut vals = stream.clone();
        for &x in &exact_atomics {
            if let Some(pos) = vals.iter().position(|&v| v == x) {
                vals.remove(pos);
            } else {
                viol.push(format!(
                    "R4 rmw-atomicity: gpm{} atomic must observe version {x}, stream {stream:?}",
                    t.gpm
                ));
            }
        }
        let hi = committed_before + w_phase;
        for &v in &vals {
            if v < load_floor || v > hi {
                viol.push(format!(
                    "R4 same-address-ordering: gpm{} load observed {v} outside [{load_floor}, {hi}]",
                    t.gpm
                ));
            }
        }

        // R5: coRR — a loads-only stream never goes backwards. Atomics
        // are excluded (they bypass the L1, so a later L1-hit load may
        // legally observe an older version than the atomic did), as are
        // perturbed schedules (delayed store arrival reorders the home).
        if ctx.fault_free && !has_atomic_on_a {
            let mut hi_seen = 0u64;
            for &v in stream {
                if v < hi_seen {
                    viol.push(format!(
                        "R5 per-location-coherence: gpm{} read regressed to {v} after {hi_seen}",
                        t.gpm
                    ));
                }
                hi_seen = hi_seen.max(v);
            }
        }

        if w_phase > 0 {
            load_floor = committed_before + 1;
        }
        committed_before += w_phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LThread;
    use hmg::prelude::Scope;

    fn mp() -> Program {
        Program {
            threads: vec![
                LThread {
                    gpm: 0,
                    ops: vec![LOp::St(0, Scope::Cta)],
                },
                LThread {
                    gpm: 2,
                    ops: vec![LOp::Ld(0, Scope::Cta)],
                },
            ],
        }
    }

    fn metrics(probe: Vec<(u32, u64)>, digest: u64) -> RunMetrics {
        RunMetrics {
            probe,
            state_digest: digest,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn allows_both_mp_outcomes_concurrently() {
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let digest = expected_digest(&p);
        for read in [0u64, 1] {
            let m = metrics(
                vec![(0, 0), (4, read), (0, 1), (2, 1), (4, 1), (6, 1)],
                digest,
            );
            assert_eq!(validate(&ctx, &Ok(m)), Vec::<String>::new(), "read={read}");
        }
    }

    #[test]
    fn rejects_stale_final_reader() {
        // The injected-bug signature: one final-kernel reader kept a
        // stale copy while the others see the committed version.
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: false,
            protocol: ProtocolKind::Hmg,
        };
        let m = metrics(
            vec![(0, 0), (4, 0), (0, 1), (2, 1), (4, 0), (6, 1)],
            expected_digest(&p),
        );
        let v = validate(&ctx, &Ok(m));
        assert!(v.iter().any(|s| s.starts_with("R3")), "{v:?}");
    }

    #[test]
    fn rejects_future_versions_and_bad_digest() {
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let m = metrics(
            vec![(0, 0), (4, 2), (0, 1), (2, 1), (4, 1), (6, 1)],
            expected_digest(&p) ^ 1,
        );
        let v = validate(&ctx, &Ok(m));
        assert!(v.iter().any(|s| s.starts_with("R2")), "{v:?}");
        assert!(v.iter().any(|s| s.starts_with("R6")), "{v:?}");
    }

    #[test]
    fn rejects_missing_observations() {
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let m = metrics(
            vec![(0, 0), (0, 1), (2, 1), (4, 1), (6, 1)],
            expected_digest(&p),
        );
        let v = validate(&ctx, &Ok(m));
        assert!(v.iter().any(|s| s.starts_with("R7")), "{v:?}");
    }

    #[test]
    fn phased_mode_pins_the_reader() {
        // gpm0 writes in phase 0, gpm2 reads in phase 1: the kernel
        // boundary forces the read to observe version 1.
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Phased,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let good = metrics(
            vec![(0, 0), (4, 1), (0, 1), (2, 1), (4, 1), (6, 1)],
            expected_digest(&p),
        );
        assert_eq!(validate(&ctx, &Ok(good)), Vec::<String>::new());
        let stale = metrics(
            vec![(0, 0), (4, 0), (0, 1), (2, 1), (4, 1), (6, 1)],
            expected_digest(&p),
        );
        let v = validate(&ctx, &Ok(stale));
        assert!(v.iter().any(|s| s.starts_with("R4")), "{v:?}");
    }

    #[test]
    fn phased_atomic_is_exact() {
        let p = Program {
            threads: vec![
                LThread {
                    gpm: 0,
                    ops: vec![LOp::St(0, Scope::Cta)],
                },
                LThread {
                    gpm: 2,
                    ops: vec![LOp::Atom(0, Scope::Sys)],
                },
            ],
        };
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Phased,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let good = metrics(
            vec![(0, 0), (4, 2), (0, 2), (2, 2), (4, 2), (6, 2)],
            expected_digest(&p),
        );
        assert_eq!(validate(&ctx, &Ok(good)), Vec::<String>::new());
        // The atomic observing the *other* write's version is a lost RMW.
        let lost = metrics(
            vec![(0, 0), (4, 1), (0, 2), (2, 2), (4, 2), (6, 2)],
            expected_digest(&p),
        );
        let v = validate(&ctx, &Ok(lost));
        assert!(v.iter().any(|s| s.contains("rmw-atomicity")), "{v:?}");
    }

    #[test]
    fn r8_admissibility_is_derived_from_the_spec() {
        use hmg::protocol::{row_index, DirEvent, DirState, TableConformance};
        let p = mp();
        let probe = vec![(0, 0), (4, 1), (0, 1), (2, 1), (4, 1), (6, 1)];
        let digest = expected_digest(&p);

        // A run that exercised the Invalidation column is admissible
        // under HMG (the spec defines the row) but not under a flat
        // protocol (the spec leaves it undefined) — same evidence, the
        // verdict flips with the variant's legal-row set.
        let mut table = TableConformance::new();
        table.rows[row_index(DirState::Valid, DirEvent::Invalidation)] = 3;
        let m = RunMetrics {
            probe: probe.clone(),
            state_digest: digest,
            table,
            ..RunMetrics::default()
        };
        let mut ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        assert_eq!(validate(&ctx, &Ok(m.clone())), Vec::<String>::new());
        ctx.protocol = ProtocolKind::Nhcc;
        let v = validate(&ctx, &Ok(m));
        assert!(v.iter().any(|s| s.starts_with("R8")), "{v:?}");

        // A runtime conformance mismatch fails R8 under any variant.
        let mut table = TableConformance::new();
        table.mismatches = 1;
        let m = RunMetrics {
            probe,
            state_digest: digest,
            table,
            ..RunMetrics::default()
        };
        ctx.protocol = ProtocolKind::Hmg;
        let v = validate(&ctx, &Ok(m));
        assert!(v.iter().any(|s| s.contains("disagreed")), "{v:?}");
    }

    #[test]
    fn r1_catches_engine_errors() {
        let p = mp();
        let ctx = RunCtx {
            program: &p,
            mode: Mode::Concurrent,
            addr: 0,
            fault_free: true,
            protocol: ProtocolKind::Hmg,
        };
        let v = validate(&ctx, &Err(SimError::protocol("boom")));
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("R1"), "{v:?}");
    }
}
