//! Execution harness: turns a litmus [`Program`] into engine traces,
//! runs it through the real timing model under a deterministic
//! schedule-perturbation sweep, and judges every run with the oracle.

use hmg::mem::Addr;
use hmg::prelude::*;
use hmg::protocol::{Access, AccessKind, Cta, Kernel, TraceOp, WorkloadTrace};
use hmg::runner::run_isolated;

use crate::oracle::{self, Mode, RunCtx, ADDR_LINES};
use crate::program::{LOp, Program, NUM_GPMS};
use crate::CheckConfig;

/// Concrete byte address behind each symbolic address: line 0 and
/// line 4 of the same first-touch page — distinct directory blocks,
/// one system home.
pub const ADDR_BYTES: [u64; 2] = [0, 512];

fn access(op: LOp) -> TraceOp {
    match op {
        LOp::Ld(a, s) => TraceOp::Access(Access::new(
            Addr(ADDR_BYTES[a as usize]),
            AccessKind::Load,
            s,
        )),
        LOp::St(a, s) => TraceOp::Access(Access::new(
            Addr(ADDR_BYTES[a as usize]),
            AccessKind::Store,
            s,
        )),
        LOp::Atom(a, s) => TraceOp::Access(Access::atomic(Addr(ADDR_BYTES[a as usize]), s)),
        LOp::Acq(s) => TraceOp::Acquire(s),
        LOp::Rel(s) => TraceOp::Release(s),
    }
}

/// One CTA per GPM of the `small_test` machine (contiguous CTA
/// scheduling pins CTA *i* to GPM *i*).
fn kernel_per_gpm(mut ops: Vec<Vec<TraceOp>>) -> Kernel {
    ops.resize(NUM_GPMS as usize, Vec::new());
    Kernel::new(ops.into_iter().map(Cta::new).collect())
}

/// The full trace for a program under a kernel mapping: a homing
/// kernel (GPM0 first-touches every used address, pinning the system
/// home), the program kernels, and a final kernel in which every GPM
/// reads every used address (the R3 witness).
pub fn trace_for(p: &Program, mode: Mode) -> WorkloadTrace {
    let used = p.used_addrs();
    let homing: Vec<TraceOp> = used
        .iter()
        .map(|&a| TraceOp::Access(Access::load(Addr(ADDR_BYTES[a as usize]))))
        .collect();
    let readback: Vec<TraceOp> = homing.clone();

    let mut kernels = vec![kernel_per_gpm(vec![homing])];
    match mode {
        Mode::Concurrent => {
            let mut per_gpm = vec![Vec::new(); NUM_GPMS as usize];
            for t in &p.threads {
                per_gpm[t.gpm as usize] = t.ops.iter().copied().map(access).collect();
            }
            kernels.push(kernel_per_gpm(per_gpm));
        }
        Mode::Phased => {
            // Threads are canonical (ascending GPM); one kernel each.
            for t in &p.threads {
                let mut per_gpm = vec![Vec::new(); NUM_GPMS as usize];
                per_gpm[t.gpm as usize] = t.ops.iter().copied().map(access).collect();
                kernels.push(kernel_per_gpm(per_gpm));
            }
        }
    }
    kernels.push(kernel_per_gpm(vec![readback; NUM_GPMS as usize]));
    WorkloadTrace::new("litmus", kernels)
}

/// The deterministic schedule-perturbation sweep: the unperturbed
/// schedule plus delay/duplication plans that reorder message arrival
/// without breaking any protocol obligation. Each plan gets its own
/// derived seed so the SplitMix64 streams differ while staying
/// reproducible from the sweep seed.
///
/// Delay magnitudes are sized against the `paper_default` fabric
/// (90-cycle intra-GPU, 360-cycle inter-GPU hops): the heavy plan must
/// hold a store forward longer than a full cross-GPU load round trip
/// (~1000 cycles), or races where a remote reader's fill beats the
/// store's invalidation can never be scheduled.
pub fn plans(
    seed: u64,
    inject: bool,
    link_down: Option<(u16, u16, u64)>,
    flips: [Option<f64>; 3],
) -> Vec<(String, FaultPlan)> {
    let specs = [
        format!("seed={seed}"),
        format!("delay=0.6/150,seed={}", seed.wrapping_add(1)),
        format!("delay=0.95/1500,seed={}", seed.wrapping_add(2)),
        format!("dup=0.4,delay=0.3/500,seed={}", seed.wrapping_add(3)),
    ];
    specs
        .into_iter()
        .map(|s| {
            let mut p = FaultPlan::parse(&s).expect("built-in plan parses");
            p.skip_hier_inv_forward = inject;
            let mut label = if inject {
                format!("{s},skip-hier-fwd")
            } else {
                s
            };
            // Stamp the permanent link loss onto every perturbation
            // plan: fail-in-place rerouting must preserve the memory
            // model under every schedule the sweep explores.
            if let Some((a, b, at_cycle)) = link_down {
                p.link_down = Some(hmg::sim::LinkDown { a, b, at_cycle });
                label = format!("{label},link-down={a}-{b}@{at_cycle}");
            }
            // Stamp soft-error injection onto every plan the same way:
            // detection and recovery must keep every schedule the sweep
            // explores inside the memory-model oracle's allowed set.
            if let Some(prob) = flips[0] {
                p.flip_msg = Some(hmg::sim::MsgFlip { prob });
                label = format!("{label},flip-msg={prob}");
            }
            if let Some(prob) = flips[1] {
                p.flip_line = Some(hmg::sim::LineFlip { prob });
                label = format!("{label},flip-line={prob}");
            }
            if let Some(prob) = flips[2] {
                p.flip_dir = Some(hmg::sim::DirFlip { prob });
                label = format!("{label},flip-dir={prob}");
            }
            (label, p)
        })
        .collect()
}

/// One confirmed `observed ⊄ allowed` disagreement.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The canonical program that produced it.
    pub program: String,
    /// A greedily minimized program that still violates, if smaller.
    pub minimized: Option<String>,
    /// Protocol under check.
    pub protocol: ProtocolKind,
    /// Kernel mapping (`concurrent` / `phased`).
    pub mode: &'static str,
    /// The fault-plan spec that reproduces it (with the sweep seed).
    pub plan: String,
    /// The probed symbolic address.
    pub addr: u8,
    /// The oracle rules violated.
    pub rules: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{}] {} (mode={}, addr={}, faults=\"{}\")",
            self.protocol,
            self.program,
            self.mode,
            (b'a' + self.addr) as char,
            self.plan
        )?;
        if let Some(m) = &self.minimized {
            writeln!(f, "  minimized: {m}")?;
        }
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Outcome of sweeping one canonical class.
#[derive(Debug, Default)]
pub struct ClassResult {
    /// Engine runs spent.
    pub runs: u64,
    /// Probe observations judged by the oracle.
    pub outcomes: u64,
    /// Soft errors injected across the class's runs (messages, lines,
    /// directory entries).
    pub flips: u64,
    /// Injected flips consumed without detection — must stay zero
    /// whenever checksums and ECC are enabled.
    pub silent: u64,
    /// Disagreements found.
    pub violations: Vec<Violation>,
}

fn flips_of(cfg: &CheckConfig) -> [Option<f64>; 3] {
    [cfg.flip_msg, cfg.flip_line, cfg.flip_dir]
}

/// Engine runs one class costs under `cfg`.
pub fn cost_of(p: &Program, cfg: &CheckConfig) -> u64 {
    (cfg.protocols.len()
        * Mode::ALL.len()
        * plans(cfg.seed, cfg.inject, cfg.link_down, flips_of(cfg)).len()) as u64
        * p.used_addrs().len() as u64
}

/// Sweeps one canonical class: every protocol x kernel mapping x
/// perturbation plan x probed address, each judged by the oracle.
pub fn check_program(p: &Program, cfg: &CheckConfig) -> ClassResult {
    let mut out = ClassResult::default();
    let used = p.used_addrs();
    let mut plans = plans(cfg.seed, cfg.inject, cfg.link_down, flips_of(cfg));
    // An arbitration discipline under check turns home flow control on
    // (threshold 0: every contended request hits the busy-home row) and
    // stamps the discipline into every plan label so repros carry it.
    if let Some(arb) = cfg.arbitration {
        for (label, _) in &mut plans {
            *label = format!("{label},arbitration={}", arb.name());
        }
    }
    for &proto in &cfg.protocols {
        for mode in Mode::ALL {
            let trace = trace_for(p, mode);
            for (spec, plan) in &plans {
                // A permanent link loss is conservatively treated like a
                // delay plan: the second-tier detour changes arrival
                // order between node pairs, so only the range-based
                // oracle rules apply (coherence must still hold). Soft
                // errors likewise: recovery (retransmit, refetch,
                // directory rebuild) perturbs timing but must never
                // change which outcomes are allowed.
                let fault_free = plan.delay.is_none()
                    && plan.duplicate.is_none()
                    && plan.link_down.is_none()
                    && !plan.has_flip_faults();
                for &a in &used {
                    let mut ecfg = EngineConfig::small_test(proto);
                    ecfg.faults = plan.clone();
                    ecfg.probe_line = Some(ADDR_LINES[a as usize]);
                    if let Some(arb) = cfg.arbitration {
                        ecfg.home_nack_threshold = Some(0);
                        ecfg.arbitration = arb;
                    }
                    out.runs += 1;
                    let result = run_isolated(ecfg, &trace);
                    if let Ok(m) = &result {
                        out.outcomes += m.probe.len() as u64;
                        out.flips += m.integrity.flips();
                        out.silent += m.integrity.silent_corruptions;
                        if m.integrity.silent_corruptions > 0 {
                            out.violations.push(Violation {
                                program: p.key(),
                                minimized: None,
                                protocol: proto,
                                mode: mode.name(),
                                plan: spec.clone(),
                                addr: a,
                                rules: vec![format!(
                                    "INTEGRITY: {} injected flip(s) consumed silently \
                                     (checksums/ECC failed to detect)",
                                    m.integrity.silent_corruptions
                                )],
                            });
                        }
                    }
                    let ctx = RunCtx {
                        program: p,
                        mode,
                        addr: a,
                        fault_free,
                        protocol: proto,
                    };
                    let rules = oracle::validate(&ctx, &result);
                    if !rules.is_empty() {
                        out.violations.push(Violation {
                            program: p.key(),
                            minimized: None,
                            protocol: proto,
                            mode: mode.name(),
                            plan: spec.clone(),
                            addr: a,
                            rules,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Greedy repro minimization: repeatedly drop one op (or a whole
/// thread) while the sweep still reports a violation. Bounded by a
/// candidate-evaluation cap so failures stay cheap to report.
pub fn minimize(p: &Program, cfg: &CheckConfig, runs: &mut u64) -> Program {
    const MAX_CANDIDATES: usize = 40;
    let mut best = p.canonical();
    let mut evaluated = 0;
    'shrink: loop {
        for (ti, t) in best.threads.iter().enumerate() {
            // Dropping the whole thread is the biggest single step.
            let mut candidates = Vec::new();
            if best.threads.len() > 1 {
                let mut q = best.clone();
                q.threads.remove(ti);
                candidates.push(q);
            }
            for oi in 0..t.ops.len() {
                let mut q = best.clone();
                q.threads[ti].ops.remove(oi);
                if q.threads[ti].ops.is_empty() {
                    q.threads.remove(ti);
                }
                if q.threads.is_empty() {
                    continue;
                }
                candidates.push(q);
            }
            for q in candidates {
                if evaluated >= MAX_CANDIDATES {
                    return best;
                }
                evaluated += 1;
                let q = q.canonical();
                let r = check_program(&q, cfg);
                *runs += r.runs;
                if !r.violations.is_empty() {
                    best = q;
                    continue 'shrink;
                }
            }
        }
        return best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LThread;

    // Writer at GPM1: the homing kernel pins the system home at GPM0,
    // so the GPM1 store forward crosses the fabric and the delay plans
    // can let a remote reader's fill win the race.
    fn mp(reader_gpm: u8) -> Program {
        Program {
            threads: vec![
                LThread {
                    gpm: 1,
                    ops: vec![LOp::St(0, Scope::Cta)],
                },
                LThread {
                    gpm: reader_gpm,
                    ops: vec![LOp::Ld(0, Scope::Cta)],
                },
            ],
        }
    }

    #[test]
    fn trace_shapes_match_the_mode() {
        let p = mp(2);
        let c = trace_for(&p, Mode::Concurrent);
        assert_eq!(c.kernels.len(), 3, "homing + program + readback");
        let ph = trace_for(&p, Mode::Phased);
        assert_eq!(ph.kernels.len(), 4, "homing + one per thread + readback");
    }

    #[test]
    fn plans_are_deterministic_and_seeded() {
        let a = plans(7, false, None, [None; 3]);
        let b = plans(7, false, None, [None; 3]);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].1, b[0].1);
        assert!(a[0].1.is_empty(), "first plan is the unperturbed schedule");
        assert!(a[1].1.delay.is_some());
        assert!(a[3].1.duplicate.is_some());
        assert!(plans(7, true, None, [None; 3])
            .iter()
            .all(|(_, p)| p.skip_hier_inv_forward));
        // Requested soft errors are stamped onto every plan and label.
        for (label, p) in plans(7, false, None, [Some(0.1), None, Some(0.5)]) {
            assert_eq!(p.flip_msg.map(|f| f.prob), Some(0.1));
            assert_eq!(p.flip_line, None);
            assert_eq!(p.flip_dir.map(|f| f.prob), Some(0.5));
            assert!(label.ends_with("flip-msg=0.1,flip-dir=0.5"), "{label}");
        }
        // A requested link loss is stamped onto every plan and label.
        for (label, p) in plans(7, false, Some((0, 1, 400)), [None; 3]) {
            assert_eq!(
                p.link_down,
                Some(hmg::sim::LinkDown {
                    a: 0,
                    b: 1,
                    at_cycle: 400
                })
            );
            assert!(label.ends_with("link-down=0-1@400"), "{label}");
        }
    }

    #[test]
    fn both_arbitration_disciplines_pass_the_message_passing_sweep() {
        // Flow control armed at threshold 0: every contended request
        // exercises the guarded HomeBusy rows. Neither discipline —
        // NACK/retry nor phase-priority defer — may ever produce an
        // outcome the memory model disallows; arbitration reorders
        // requests but must not change legality.
        for arb in hmg::protocol::Arbitration::ALL {
            let cfg = CheckConfig {
                arbitration: Some(arb),
                ..CheckConfig::default()
            };
            for reader in [2u8, 3] {
                let r = check_program(&mp(reader), &cfg);
                assert!(
                    r.violations.is_empty(),
                    "{arb:?} reader gpm{reader}: {:?}",
                    r.violations
                );
            }
        }
    }

    #[test]
    fn message_passing_survives_a_mid_litmus_link_loss() {
        // The MP litmus with the GPM0<->GPM1 first-tier link failing in
        // the middle of the run: every outcome must stay within the
        // oracle's allowed set while traffic detours over the second
        // tier.
        let cfg = CheckConfig {
            link_down: Some((0, 1, 400)),
            ..CheckConfig::default()
        };
        for reader in [2u8, 3] {
            let r = check_program(&mp(reader), &cfg);
            assert!(
                r.violations.is_empty(),
                "reader gpm{reader}: {:?}",
                r.violations
            );
        }
    }

    #[test]
    fn clean_protocols_pass_the_message_passing_sweep() {
        let cfg = CheckConfig::default();
        for reader in [2u8, 3] {
            let r = check_program(&mp(reader), &cfg);
            assert_eq!(r.runs, cost_of(&mp(reader), &cfg));
            assert!(
                r.violations.is_empty(),
                "reader gpm{reader}: {:?}",
                r.violations
            );
        }
    }

    #[test]
    fn message_passing_survives_a_soft_error_storm() {
        // Aggressive corruption on all three surfaces at once: every
        // flip must be detected and recovered (retransmit, ECC, refetch,
        // or rebuild) without ever leaving the oracle's allowed set —
        // and without a single silent corruption.
        let cfg = CheckConfig {
            flip_msg: Some(0.05),
            flip_line: Some(0.4),
            flip_dir: Some(0.4),
            ..CheckConfig::default()
        };
        let mut flips = 0;
        for reader in [2u8, 3] {
            let r = check_program(&mp(reader), &cfg);
            assert!(
                r.violations.is_empty(),
                "reader gpm{reader}: {:?}",
                r.violations
            );
            assert_eq!(r.silent, 0, "reader gpm{reader}");
            flips += r.flips;
        }
        assert!(flips > 0, "the storm must actually inject soft errors");
    }

    #[test]
    fn injected_hierarchical_bug_is_caught_and_minimized() {
        // Skipping the HMG GPU-home invalidation forward leaves a stale
        // copy in the remote GPU; one of the two cross-GPU readers sits
        // off the hashed GPU home and must observe it.
        let cfg = CheckConfig {
            inject: true,
            ..CheckConfig::default()
        };
        let mut caught = Vec::new();
        for reader in [2u8, 3] {
            let r = check_program(&mp(reader), &cfg);
            caught.extend(r.violations);
        }
        assert!(!caught.is_empty(), "bug must be observable");
        assert!(caught.iter().all(|v| v.protocol == ProtocolKind::Hmg));
        let first = &caught[0];
        assert!(
            first
                .rules
                .iter()
                .any(|r| r.starts_with("R3") || r.starts_with("R4")),
            "{first}"
        );
        // The two-op program is already minimal: minimization converges.
        let victim = mp(if caught[0].program.contains("gpm2") {
            2
        } else {
            3
        });
        let mut runs = 0;
        let m = minimize(&victim, &cfg, &mut runs);
        assert!(m.total_ops() <= victim.total_ops());
        assert!(runs > 0);
    }
}
