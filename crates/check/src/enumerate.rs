//! Exhaustive, lazy enumeration of the bounded litmus space.
//!
//! The space is ordered so the most discriminating programs come first:
//! cross-GPU placements before intra-GPU ones, writes before reads in
//! the op alphabet, and small programs before large ones. A budgeted
//! sweep therefore covers the classic two-thread communication patterns
//! (MP, coRR, coWW, store buffering) within the first few hundred
//! canonical classes.

use hmg::prelude::Scope;

use crate::program::{LOp, LThread, Program, MAX_OPS_PER_THREAD};

/// Two-thread placements, cross-GPU first. GPMs 0–1 are GPU 0,
/// GPMs 2–3 are GPU 1; `gpu_home` hashing makes each pair distinct.
/// GPM1 leads: the homing kernel pins the system home at GPM0, so a
/// GPM1 writer's store forward crosses the fabric (and can lose races
/// the perturbation plans create), while a GPM0 writer commits at its
/// own node with no window for a remote reader to slip into.
pub const PLACEMENTS_2: [&[u8]; 6] = [&[1, 2], &[1, 3], &[0, 2], &[0, 3], &[0, 1], &[2, 3]];

/// Three-thread placements (every 3-subset of the 4 GPMs).
pub const PLACEMENTS_3: [&[u8]; 4] = [&[0, 1, 2], &[0, 1, 3], &[0, 2, 3], &[1, 2, 3]];

/// The op alphabet: writes first so early programs communicate.
/// Scopes are restricted to the combinations the engine distinguishes
/// (plain `.cta` data accesses, `.sys` loads that bypass local caching
/// under software protocols, and scoped atomics/fences).
pub fn alphabet() -> Vec<LOp> {
    let mut v = Vec::new();
    for a in 0..2u8 {
        v.push(LOp::St(a, Scope::Cta));
        v.push(LOp::Ld(a, Scope::Cta));
        v.push(LOp::Ld(a, Scope::Sys));
        v.push(LOp::Atom(a, Scope::Gpu));
        v.push(LOp::Atom(a, Scope::Sys));
    }
    v.push(LOp::Acq(Scope::Gpu));
    v.push(LOp::Acq(Scope::Sys));
    v.push(LOp::Rel(Scope::Gpu));
    v.push(LOp::Rel(Scope::Sys));
    v
}

/// All ways to split `total` ops into `parts` per-thread counts, each
/// `1..=MAX_OPS_PER_THREAD`, in lexicographic order.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn rec(total: usize, parts: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            if (1..=MAX_OPS_PER_THREAD).contains(&total) {
                acc.push(total);
                out.push(acc.clone());
                acc.pop();
            }
            return;
        }
        for first in 1..=MAX_OPS_PER_THREAD.min(total) {
            acc.push(first);
            rec(total - first, parts - 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(total, parts, &mut Vec::new(), &mut out);
    out
}

/// A shape: which GPMs run threads and how many ops each thread gets.
#[derive(Debug, Clone)]
struct Shape {
    gpms: Vec<u8>,
    ops_per_thread: Vec<usize>,
}

fn shapes() -> Vec<Shape> {
    let mut out = Vec::new();
    // Small programs first; 2-thread placements before 3-thread ones.
    for total in 2..=3 * MAX_OPS_PER_THREAD {
        for placement in PLACEMENTS_2 {
            for comp in compositions(total, 2) {
                out.push(Shape {
                    gpms: placement.to_vec(),
                    ops_per_thread: comp,
                });
            }
        }
        for placement in PLACEMENTS_3 {
            for comp in compositions(total, 3) {
                out.push(Shape {
                    gpms: placement.to_vec(),
                    ops_per_thread: comp,
                });
            }
        }
    }
    out
}

/// Lazy iterator over every program in the bounded space, in the
/// deterministic order described above. The raw space is astronomically
/// larger than any budget; callers canonicalize, deduplicate, and stop
/// when their run budget is spent.
pub struct Enumerator {
    alphabet: Vec<LOp>,
    shapes: Vec<Shape>,
    shape: usize,
    /// Odometer over the flattened op slots of the current shape;
    /// `None` means the shape has not started yet.
    digits: Option<Vec<usize>>,
}

impl Enumerator {
    /// An enumerator over the full bounded space.
    pub fn new() -> Self {
        Enumerator {
            alphabet: alphabet(),
            shapes: shapes(),
            shape: 0,
            digits: None,
        }
    }

    fn build(&self) -> Program {
        let shape = &self.shapes[self.shape];
        let digits = self.digits.as_ref().expect("positioned");
        let mut threads = Vec::with_capacity(shape.gpms.len());
        let mut slot = 0;
        for (i, &gpm) in shape.gpms.iter().enumerate() {
            let n = shape.ops_per_thread[i];
            let ops = digits[slot..slot + n]
                .iter()
                .map(|&d| self.alphabet[d])
                .collect();
            slot += n;
            threads.push(LThread { gpm, ops });
        }
        Program { threads }
    }

    /// Advances the odometer; `false` when the current shape is done.
    fn step(&mut self) -> bool {
        let digits = self.digits.as_mut().expect("positioned");
        for d in digits.iter_mut().rev() {
            *d += 1;
            if *d < self.alphabet.len() {
                return true;
            }
            *d = 0;
        }
        false
    }
}

impl Default for Enumerator {
    fn default() -> Self {
        Enumerator::new()
    }
}

impl Iterator for Enumerator {
    type Item = Program;

    fn next(&mut self) -> Option<Program> {
        loop {
            if self.shape >= self.shapes.len() {
                return None;
            }
            match self.digits {
                None => {
                    let total: usize = self.shapes[self.shape].ops_per_thread.iter().sum();
                    self.digits = Some(vec![0; total]);
                    return Some(self.build());
                }
                Some(_) => {
                    if self.step() {
                        return Some(self.build());
                    }
                    self.digits = None;
                    self.shape += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn first_program_is_the_cross_gpu_store_pair() {
        let first = Enumerator::new().next().unwrap();
        assert_eq!(first.key(), "gpm1: st.cta a | gpm2: st.cta a");
    }

    #[test]
    fn early_prefix_contains_the_cross_gpu_mp_shapes() {
        // The writer/reader pairs that expose a dropped hierarchical
        // invalidation forward must appear within the first two shapes'
        // programs (2 x 14 x 14 of them): both cross-GPU readers, so
        // whichever sits off the hashed GPU home observes the stale copy.
        let keys: Vec<String> = Enumerator::new().take(392).map(|p| p.key()).collect();
        assert!(keys.contains(&"gpm1: st.cta a | gpm2: ld.cta a".to_string()));
        assert!(keys.contains(&"gpm1: st.cta a | gpm3: ld.cta a".to_string()));
    }

    #[test]
    fn enumeration_is_deterministic_and_shapes_are_exact() {
        let a: Vec<String> = Enumerator::new().take(500).map(|p| p.key()).collect();
        let b: Vec<String> = Enumerator::new().take(500).map(|p| p.key()).collect();
        assert_eq!(a, b);
        // First shape: [1,2] with 1+1 ops = 196 programs, then [1,3].
        let programs: Vec<_> = Enumerator::new().take(197).collect();
        assert!(programs[..196]
            .iter()
            .all(|p| p.threads[0].gpm == 1 && p.threads[1].gpm == 2 && p.total_ops() == 2));
        assert_eq!(programs[196].threads[1].gpm, 3);
    }

    #[test]
    fn canonicalization_collapses_address_renames() {
        // Within the two-op [1,2] shape, programs over only address `b`
        // collapse onto their address-`a` twins: strictly fewer classes
        // than raw programs.
        let programs: Vec<_> = Enumerator::new().take(196).collect();
        let classes: HashSet<String> = programs.iter().map(|p| p.canonical().key()).collect();
        assert!(classes.len() < programs.len());
        // But distinct placements never collapse.
        assert!(Enumerator::new()
            .take(400)
            .map(|p| p.canonical().key())
            .any(|k| k.contains("gpm3")));
    }

    #[test]
    fn compositions_respect_per_thread_bounds() {
        assert_eq!(compositions(2, 2), vec![vec![1, 1]]);
        assert_eq!(compositions(6, 2), vec![vec![3, 3]]);
        assert_eq!(compositions(7, 2), Vec::<Vec<usize>>::new());
        assert_eq!(compositions(3, 3), vec![vec![1, 1, 1]]);
        assert_eq!(compositions(4, 2), vec![vec![1, 3], vec![2, 2], vec![3, 1]]);
    }
}
