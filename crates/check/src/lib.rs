#![warn(missing_docs)]

//! # hmg-check: exhaustive litmus enumeration + axiomatic oracle
//!
//! The paper's central correctness claim is that NHCC/HMG preserve the
//! scoped, non-multi-copy-atomic GPU memory model while eliminating
//! transient states and invalidation acknowledgments (PAPER.md §IV–V).
//! This crate checks that claim mechanically instead of by hand-picked
//! litmus tests:
//!
//! 1. [`enumerate`] generates *every* small concurrent program over a
//!    bounded shape (2–3 threads on distinct GPMs, ≤2 addresses,
//!    ≤3 scoped ops per thread), canonicalized modulo the symmetries
//!    the machine actually has (address renaming; placements are *not*
//!    symmetric because homes are hashed).
//! 2. [`harness`] runs each canonical class through the real engine
//!    under a deterministic schedule-perturbation sweep (reusing
//!    `FaultPlan` delay/duplication as the interleaving driver), in
//!    both a concurrent and a phased kernel mapping.
//! 3. [`oracle`] independently derives the outcomes the memory model
//!    allows and asserts `observed ⊆ allowed` — no golden files; any
//!    disagreement is reported as a minimized repro with the fault
//!    spec that reproduces it.
//!
//! See docs/CHECKING.md for the rule-by-rule cross-reference to the
//! paper and the failure-reproduction workflow.
//!
//! ```
//! use hmg_check::{run_check, CheckConfig};
//!
//! let report = run_check(&CheckConfig {
//!     budget: 32,
//!     ..CheckConfig::default()
//! });
//! assert!(report.violations.is_empty());
//! assert!(report.runs <= 32);
//! ```

pub mod enumerate;
pub mod harness;
pub mod oracle;
pub mod program;

use std::collections::HashSet;
use std::fmt;

use hmg::prelude::ProtocolKind;
use hmg::supervisor::{self, Attempt, CellStatus, Isolation, SupervisorConfig};

use enumerate::Enumerator;
use harness::{check_program, cost_of, minimize, Violation};
use program::Program;

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Total engine-run budget for the sweep (minimization of any
    /// failures found may spend extra runs on top).
    pub budget: u64,
    /// Sweep seed: feeds every perturbation plan's RNG stream.
    pub seed: u64,
    /// Protocols under check.
    pub protocols: Vec<ProtocolKind>,
    /// Deliberately inject the `skip-hier-fwd` protocol bug (an HMG
    /// GPU home dropping system-home invalidation forwards) — the
    /// checker's own self-test: the sweep must then report violations.
    pub inject: bool,
    /// Greedily minimize the first violation found.
    pub minimize: bool,
    /// Kill the first-tier link `(a, b)` at the given cycle in every
    /// run of the sweep (`--faults link-down=A-B@CYCLE`): the litmus
    /// outcomes must stay within the memory-model oracle's allowed set
    /// even while every affected message detours over the second tier.
    pub link_down: Option<(u16, u16, u64)>,
    /// Per-hop in-flight message corruption probability armed on every
    /// plan of the sweep (`--faults flip-msg=PROB`). Checksum detection
    /// and retransmission must keep every outcome within the oracle's
    /// allowed set; any silently consumed flip fails the sweep.
    pub flip_msg: Option<f64>,
    /// Per-scrub-period resident-L2-line corruption probability
    /// (`--faults flip-line=PROB`), recovered through ECC.
    pub flip_line: Option<f64>,
    /// Per-scrub-period directory-entry corruption probability
    /// (`--faults flip-dir=PROB`), recovered through ECC or a
    /// sticky-broadcast rebuild.
    pub flip_dir: Option<f64>,
    /// Sweep with home flow control armed (threshold 0) under the given
    /// busy-home arbitration discipline (`--protocol` with a `-phase`
    /// variant, or `--tweak arbitration=...`). `None` (default) leaves
    /// flow control off — the unguarded spec rows only. The litmus
    /// outcomes must stay inside the oracle's allowed set either way:
    /// arbitration may reorder requests but never change legality.
    pub arbitration: Option<hmg::protocol::Arbitration>,
    /// Worker threads for the class sweep (0 = one per core).
    pub jobs: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            budget: 2000,
            seed: 1,
            protocols: vec![ProtocolKind::Nhcc, ProtocolKind::Hmg],
            inject: false,
            minimize: true,
            link_down: None,
            flip_msg: None,
            flip_line: None,
            flip_dir: None,
            arbitration: None,
            jobs: 0,
        }
    }
}

/// What a sweep covered and found.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Raw programs drawn from the enumerator (before canonicalization).
    pub programs_enumerated: u64,
    /// Distinct canonical classes seen among write-containing programs.
    pub canonical_classes: u64,
    /// Classes actually swept within the budget.
    pub classes_checked: u64,
    /// Engine runs spent (sweep + minimization).
    pub runs: u64,
    /// Probe observations judged by the oracle.
    pub outcomes_checked: u64,
    /// Soft errors injected across the sweep (flip-msg/line/dir).
    pub flips_injected: u64,
    /// Injected flips consumed without detection; nonzero fails the
    /// sweep (each one is also reported as an INTEGRITY violation).
    pub silent_corruptions: u64,
    /// Confirmed `observed ⊄ allowed` disagreements.
    pub violations: Vec<Violation>,
    /// Whether the bounded space was fully covered before the budget
    /// ran out.
    pub exhausted: bool,
    /// Canonical class keys whose checker panicked (supervisor-caught);
    /// a crashed class is *unchecked*, so it fails the sweep.
    pub crashed_classes: Vec<String>,
}

impl CheckReport {
    /// `true` when the sweep found no disagreement and no class crashed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.crashed_classes.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "hmg-check: bounded litmus sweep vs axiomatic oracle")?;
        writeln!(f, "  programs enumerated : {}", self.programs_enumerated)?;
        writeln!(
            f,
            "  canonical classes   : {} seen, {} checked",
            self.canonical_classes, self.classes_checked
        )?;
        writeln!(f, "  engine runs         : {}", self.runs)?;
        writeln!(f, "  outcomes checked    : {}", self.outcomes_checked)?;
        if self.flips_injected > 0 || self.silent_corruptions > 0 {
            writeln!(
                f,
                "  soft errors         : {} injected, {} silent",
                self.flips_injected, self.silent_corruptions
            )?;
        }
        writeln!(
            f,
            "  space exhausted     : {}",
            if self.exhausted { "yes" } else { "no (budget)" }
        )?;
        writeln!(f, "  violations          : {}", self.violations.len())?;
        const SHOWN: usize = 10;
        for v in self.violations.iter().take(SHOWN) {
            write!(f, "{v}")?;
        }
        if self.violations.len() > SHOWN {
            writeln!(f, "  ... and {} more", self.violations.len() - SHOWN)?;
        }
        if !self.crashed_classes.is_empty() {
            writeln!(f, "  crashed classes     : {}", self.crashed_classes.len())?;
            for c in &self.crashed_classes {
                writeln!(f, "    {c}")?;
            }
        }
        Ok(())
    }
}

/// Runs the budgeted sweep: enumerate, canonicalize, deduplicate,
/// check classes in parallel, and minimize the first failure.
pub fn run_check(cfg: &CheckConfig) -> CheckReport {
    let mut report = CheckReport::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut batch: Vec<Program> = Vec::new();
    let mut allocated = 0u64;
    let mut enumerator = Enumerator::new();
    report.exhausted = true;
    for p in &mut enumerator {
        report.programs_enumerated += 1;
        if !p.has_write() {
            continue; // loads of an unwritten line trivially observe 0
        }
        let c = p.canonical();
        if !seen.insert(c.key()) {
            continue;
        }
        report.canonical_classes += 1;
        let cost = cost_of(&c, cfg);
        if allocated + cost > cfg.budget {
            report.exhausted = false;
            break;
        }
        allocated += cost;
        batch.push(c);
    }
    report.classes_checked = batch.len() as u64;

    // Classes sweep under the supervisor (thread isolation: litmus
    // cells are tiny, process re-exec would dominate). A panicking
    // class is quarantined and reported instead of aborting the sweep.
    let sup = SupervisorConfig {
        jobs: cfg.jobs,
        cell_timeout: None,
        retries: 0,
        isolation: Isolation::Thread,
        keep_going: true,
    };
    let sweep = supervisor::supervise(
        &batch,
        |p: &Program| p.key(),
        &sup,
        |p, _attempt| match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_program(p, cfg)
        })) {
            Ok(r) => Attempt::Ok(r),
            Err(payload) => {
                Attempt::Crashed(supervisor::panic_message(payload.as_ref()).to_string())
            }
        },
    );
    for cell in sweep.cells {
        match cell.status {
            CellStatus::Ok => {
                if let Some(r) = cell.outcome {
                    report.runs += r.runs;
                    report.outcomes_checked += r.outcomes;
                    report.flips_injected += r.flips;
                    report.silent_corruptions += r.silent;
                    report.violations.extend(r.violations);
                }
            }
            CellStatus::Crashed(m) => report.crashed_classes.push(format!("{}: {m}", cell.key)),
            // retries=0 + keep_going: failed/timeout/skipped cannot
            // occur in thread mode, but route them the same way.
            CellStatus::Failed(e) => report.crashed_classes.push(format!("{}: {e}", cell.key)),
            CellStatus::Timeout(m) => report.crashed_classes.push(format!("{}: {m}", cell.key)),
            CellStatus::Skipped => report
                .crashed_classes
                .push(format!("{}: skipped", cell.key)),
        }
    }

    if cfg.minimize {
        if let Some(first) = report.violations.first() {
            let key = first.program.clone();
            if let Some(p) = batch.iter().find(|p| p.key() == key) {
                let min = minimize(p, cfg, &mut report.runs);
                if min.key() != key {
                    for v in report.violations.iter_mut().filter(|v| v.program == key) {
                        v.minimized = Some(min.key());
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_finds_no_violations() {
        // A real (if small) slice of the space: every checked class of
        // the canonical cross-GPU two-op shape must agree with the
        // oracle under every protocol, mapping, and perturbation.
        let cfg = CheckConfig {
            budget: 320,
            ..CheckConfig::default()
        };
        let report = run_check(&cfg);
        assert!(report.passed(), "{report}");
        assert!(report.runs <= cfg.budget);
        assert!(report.classes_checked >= 10, "{report}");
        assert!(report.outcomes_checked > 0);
        assert!(!report.exhausted, "the bounded space dwarfs this budget");
        assert!(report.programs_enumerated >= report.canonical_classes);
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let cfg = CheckConfig {
            budget: 160,
            ..CheckConfig::default()
        };
        let a = run_check(&cfg);
        let b = run_check(&cfg);
        assert_eq!(a.programs_enumerated, b.programs_enumerated);
        assert_eq!(a.classes_checked, b.classes_checked);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.outcomes_checked, b.outcomes_checked);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    #[test]
    fn injected_protocol_bug_is_caught_within_the_smoke_budget() {
        // Acceptance gate: dropping one hierarchical invalidation
        // forward must be caught by the default (CI smoke) budget.
        let cfg = CheckConfig {
            inject: true,
            ..CheckConfig::default()
        };
        let report = run_check(&cfg);
        assert!(!report.passed(), "the checker must catch the bug");
        assert!(report
            .violations
            .iter()
            .all(|v| v.protocol == ProtocolKind::Hmg));
        // The repro is actionable: it names a program and a fault spec.
        let v = &report.violations[0];
        assert!(v.plan.contains("skip-hier-fwd"), "{v}");
        assert!(!v.rules.is_empty());
    }
}
