//! Litmus programs: tiny straight-line concurrent programs over the
//! checker's bounded shape, plus canonicalization modulo the symmetries
//! the machine actually has.

use std::fmt;

use hmg::prelude::Scope;

/// Number of GPMs on the `small_test` machine (2 GPUs x 2 GPMs).
pub const NUM_GPMS: u8 = 4;

/// Maximum distinct addresses a program may use.
pub const MAX_ADDRS: u8 = 2;

/// Maximum ops per thread.
pub const MAX_OPS_PER_THREAD: usize = 3;

/// One litmus operation. Addresses are symbolic indices (`0..MAX_ADDRS`)
/// mapped to concrete lines by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LOp {
    /// A scoped load of address `a`.
    Ld(u8, Scope),
    /// A scoped store to address `a`.
    St(u8, Scope),
    /// A scoped atomic RMW on address `a` (performed at the scope home).
    Atom(u8, Scope),
    /// A scoped acquire fence.
    Acq(Scope),
    /// A scoped release fence.
    Rel(Scope),
}

impl LOp {
    /// The address the op touches, if it is a memory access.
    pub fn addr(self) -> Option<u8> {
        match self {
            LOp::Ld(a, _) | LOp::St(a, _) | LOp::Atom(a, _) => Some(a),
            LOp::Acq(_) | LOp::Rel(_) => None,
        }
    }

    /// Whether the op writes memory (stores and atomics bump the
    /// engine's per-line version counter).
    pub fn writes(self) -> bool {
        matches!(self, LOp::St(..) | LOp::Atom(..))
    }

    /// Whether the op produces a probe record (loads and atomics).
    pub fn observes(self) -> bool {
        matches!(self, LOp::Ld(..) | LOp::Atom(..))
    }

    /// The op with its address substituted through `map`.
    fn rename(self, map: &[u8; MAX_ADDRS as usize]) -> LOp {
        match self {
            LOp::Ld(a, s) => LOp::Ld(map[a as usize], s),
            LOp::St(a, s) => LOp::St(map[a as usize], s),
            LOp::Atom(a, s) => LOp::Atom(map[a as usize], s),
            fence => fence,
        }
    }
}

impl fmt::Display for LOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |a: u8| (b'a' + a) as char;
        match self {
            LOp::Ld(a, s) => write!(f, "ld{s} {}", name(*a)),
            LOp::St(a, s) => write!(f, "st{s} {}", name(*a)),
            LOp::Atom(a, s) => write!(f, "atom{s} {}", name(*a)),
            LOp::Acq(s) => write!(f, "acq{s}"),
            LOp::Rel(s) => write!(f, "rel{s}"),
        }
    }
}

/// One thread: a GPM placement plus a straight-line op list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LThread {
    /// The GPM (0..NUM_GPMS) whose first SM runs the thread. GPMs 0–1
    /// form GPU 0, GPMs 2–3 form GPU 1.
    pub gpm: u8,
    /// Ops in program order.
    pub ops: Vec<LOp>,
}

/// A litmus program: 2–3 threads on distinct GPMs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// The threads, kept sorted by GPM.
    pub threads: Vec<LThread>,
}

impl Program {
    /// Canonical form: threads sorted by GPM and addresses renamed in
    /// first-appearance order.
    ///
    /// These are the only symmetries the machine grants. GPM renaming is
    /// *not* one: `gpu_home` hashes each block to a specific GPM inside
    /// the requesting GPU and first-touch homing pins the system home,
    /// so `[0,2]` and `[0,3]` placements are genuinely different
    /// experiments.
    pub fn canonical(&self) -> Program {
        let mut threads = self.threads.clone();
        threads.sort_by_key(|t| t.gpm);
        let mut map = [u8::MAX; MAX_ADDRS as usize];
        let mut next = 0u8;
        for t in &threads {
            for op in &t.ops {
                if let Some(a) = op.addr() {
                    if map[a as usize] == u8::MAX {
                        map[a as usize] = next;
                        next += 1;
                    }
                }
            }
        }
        // Addresses that never appear keep an identity mapping so
        // `rename` stays total.
        for (i, m) in map.iter_mut().enumerate() {
            if *m == u8::MAX {
                *m = i as u8;
            }
        }
        for t in &mut threads {
            for op in &mut t.ops {
                *op = op.rename(&map);
            }
        }
        Program { threads }
    }

    /// A stable text key for the canonical class (also the display form).
    pub fn key(&self) -> String {
        self.to_string()
    }

    /// Sorted list of the address indices the program uses.
    pub fn used_addrs(&self) -> Vec<u8> {
        let mut used: Vec<u8> = (0..MAX_ADDRS)
            .filter(|&a| {
                self.threads
                    .iter()
                    .any(|t| t.ops.iter().any(|op| op.addr() == Some(a)))
            })
            .collect();
        used.sort_unstable();
        used
    }

    /// Number of writes (stores + atomics) to address `a` across all
    /// threads — the final committed version of the line.
    pub fn writes_to(&self, a: u8) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|op| op.writes() && op.addr() == Some(a))
            .count() as u64
    }

    /// Whether any op writes memory (write-free programs are pruned:
    /// every load trivially observes version 0).
    pub fn has_write(&self) -> bool {
        self.threads
            .iter()
            .any(|t| t.ops.iter().any(|op| op.writes()))
    }

    /// Total number of ops.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "gpm{}:", t.gpm)?;
            for (j, op) in t.ops.iter().enumerate() {
                write!(f, "{}{op}", if j == 0 { " " } else { "; " })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(threads: Vec<(u8, Vec<LOp>)>) -> Program {
        Program {
            threads: threads
                .into_iter()
                .map(|(gpm, ops)| LThread { gpm, ops })
                .collect(),
        }
    }

    #[test]
    fn canonical_renames_addresses_by_first_appearance() {
        // A program that only ever touches address 1 must canonicalize
        // to the same class as the address-0 version.
        let p = prog(vec![
            (0, vec![LOp::St(1, Scope::Cta)]),
            (2, vec![LOp::Ld(1, Scope::Sys)]),
        ]);
        let q = prog(vec![
            (0, vec![LOp::St(0, Scope::Cta)]),
            (2, vec![LOp::Ld(0, Scope::Sys)]),
        ]);
        assert_eq!(p.canonical().key(), q.canonical().key());
    }

    #[test]
    fn canonical_sorts_threads_but_keeps_placement() {
        let p = prog(vec![
            (3, vec![LOp::Ld(0, Scope::Cta)]),
            (0, vec![LOp::St(0, Scope::Cta)]),
        ]);
        let c = p.canonical();
        assert_eq!(c.threads[0].gpm, 0);
        assert_eq!(c.threads[1].gpm, 3);
        // Placements are NOT a symmetry: gpm3 stays gpm3.
        assert!(c.key().contains("gpm3"), "{}", c.key());
    }

    #[test]
    fn accessors_count_writes_and_addresses() {
        let p = prog(vec![
            (0, vec![LOp::St(0, Scope::Cta), LOp::Atom(1, Scope::Gpu)]),
            (2, vec![LOp::Ld(1, Scope::Sys), LOp::Rel(Scope::Sys)]),
        ]);
        assert_eq!(p.used_addrs(), vec![0, 1]);
        assert_eq!(p.writes_to(0), 1);
        assert_eq!(p.writes_to(1), 1);
        assert!(p.has_write());
        assert_eq!(p.total_ops(), 4);
        assert!(!prog(vec![(0, vec![LOp::Ld(0, Scope::Cta)])]).has_write());
    }

    #[test]
    fn display_is_readable_and_stable() {
        let p = prog(vec![
            (0, vec![LOp::St(0, Scope::Cta), LOp::Rel(Scope::Sys)]),
            (2, vec![LOp::Acq(Scope::Gpu), LOp::Ld(0, Scope::Cta)]),
        ]);
        assert_eq!(p.key(), "gpm0: st.cta a; rel.sys | gpm2: acq.gpu; ld.cta a");
    }
}
