//! Property-based tests for the memory substrate: the cache, the
//! coherence directory, and the address math.

use proptest::prelude::*;

use hmg_interconnect::{GpmId, GpuId, Topology};
use hmg_mem::addr::{Addr, BlockAddr, LineAddr};
use hmg_mem::{Cache, CacheConfig, Directory, DirectoryConfig, MemGeometry, Sharer, SharerSet};

proptest! {
    /// Geometry round trips: every address's line contains it, every
    /// line's block contains it, pages align.
    #[test]
    fn geometry_roundtrips(raw in 0u64..1 << 45) {
        let g = MemGeometry::paper_default();
        let a = Addr(raw);
        let line = g.line_of(a);
        prop_assert!(g.line_base(line).0 <= raw);
        prop_assert!(raw < g.line_base(line).0 + g.line_bytes() as u64);
        let block = g.block_of(line);
        prop_assert!(g.lines_of_block(block).any(|l| l == line));
        prop_assert_eq!(g.block_of_addr(a), block);
        prop_assert_eq!(g.page_of(a), g.page_of_line(line));
    }

    /// A cache never exceeds its capacity, and everything reported
    /// resident is actually retrievable.
    #[test]
    fn cache_capacity_and_residency(
        lines in proptest::collection::vec(0u64..4096, 1..600),
        ways in 1u32..8,
    ) {
        let capacity = 64 * ways; // 64 sets
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(capacity, ways));
        for (i, &l) in lines.iter().enumerate() {
            c.insert(LineAddr(l), i as u64);
            prop_assert!(c.len() <= capacity as usize);
        }
        for (l, _) in c.iter() {
            prop_assert!(c.peek(l).is_some());
            prop_assert!(lines.contains(&l.0), "resident line was never inserted");
        }
    }

    /// Insert-then-get returns the last metadata written, unless the
    /// line was evicted — and evictions only happen on insertions into
    /// the same set.
    #[test]
    fn cache_last_write_wins(ops in proptest::collection::vec((0u64..256, 0u64..1000), 1..300)) {
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(1024, 4));
        let mut model = std::collections::HashMap::new();
        for &(line, meta) in &ops {
            c.insert(LineAddr(line), meta);
            model.insert(line, meta);
        }
        // 256 distinct lines always fit a 1024-line cache: nothing may
        // have been evicted, so cache and model agree exactly.
        for (&line, &meta) in &model {
            prop_assert_eq!(c.peek(LineAddr(line)), Some(&meta));
        }
    }

    /// invalidate_where(p) removes exactly the lines satisfying `p`.
    #[test]
    fn cache_selective_invalidation(lines in proptest::collection::vec(0u64..512, 1..200), cutoff in 0u64..512) {
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(1024, 4));
        for &l in &lines {
            c.insert(LineAddr(l), l);
        }
        let before = c.len();
        let removed = c.invalidate_where(|l, _| l.0 < cutoff);
        prop_assert_eq!(before, c.len() + removed as usize);
        for (l, _) in c.iter() {
            prop_assert!(l.0 >= cutoff);
        }
    }

    /// SharerSet behaves as a set over the sharer universe.
    #[test]
    fn sharer_set_is_a_set(
        gpms in proptest::collection::vec(0u16..16, 0..20),
        gpus in proptest::collection::vec(0u16..4, 0..8),
    ) {
        let topo = Topology::new(4, 4);
        let mut s = SharerSet::new();
        let mut model = std::collections::HashSet::new();
        for &g in &gpms {
            s.insert(&topo, Sharer::Gpm(GpmId(g)));
            model.insert(Sharer::Gpm(GpmId(g)));
        }
        for &g in &gpus {
            s.insert(&topo, Sharer::Gpu(GpuId(g)));
            model.insert(Sharer::Gpu(GpuId(g)));
        }
        prop_assert_eq!(s.len() as usize, model.len());
        for m in &model {
            prop_assert!(s.contains(&topo, *m));
        }
        let listed: std::collections::HashSet<_> = s.iter(&topo).into_iter().collect();
        prop_assert_eq!(listed, model);
    }

    /// The directory never exceeds its configured entry count, and any
    /// block it reports valid was allocated and not since removed.
    #[test]
    fn directory_capacity_invariant(blocks in proptest::collection::vec(0u64..10_000, 1..500)) {
        let topo = Topology::new(4, 4);
        let cfg = DirectoryConfig::new(64, 4);
        let mut d = Directory::new(cfg, topo);
        for &b in &blocks {
            let (set, evicted) = d.allocate(BlockAddr(b));
            set.insert(&topo, Sharer::Gpu(GpuId((b % 4) as u16)));
            if let Some((vb, _)) = evicted {
                // The evicted block is gone.
                prop_assert!(vb != BlockAddr(b));
            }
            prop_assert!(d.len() <= cfg.entries as usize);
        }
        // Everything resident was inserted at some point.
        for &b in &blocks {
            if let Some(s) = d.lookup(BlockAddr(b)) {
                prop_assert!(!s.is_empty());
            }
        }
    }

    /// Allocate-then-remove leaves the directory empty of that block and
    /// returns the sharers that were registered.
    #[test]
    fn directory_remove_returns_registered_sharers(
        block in 0u64..1000,
        sharers in proptest::collection::vec(0u16..16, 1..6),
    ) {
        let topo = Topology::new(4, 4);
        let mut d = Directory::new(DirectoryConfig::new(256, 4), topo);
        {
            let (set, _) = d.allocate(BlockAddr(block));
            for &s in &sharers {
                set.insert(&topo, Sharer::Gpm(GpmId(s)));
            }
        }
        let got = d.remove(BlockAddr(block)).expect("present");
        let distinct: std::collections::HashSet<_> = sharers.iter().collect();
        prop_assert_eq!(got.len() as usize, distinct.len());
        prop_assert!(d.lookup(BlockAddr(block)).is_none());
    }
}
