//! Randomized property tests for the memory substrate: the cache, the
//! coherence directory, and the address math. Driven by the in-repo
//! SplitMix64 [`Rng`] rather than an external property-testing crate so
//! the workspace builds offline.

use hmg_interconnect::{GpmId, GpuId, Topology};
use hmg_mem::addr::{Addr, BlockAddr, LineAddr};
use hmg_mem::{Cache, CacheConfig, Directory, DirectoryConfig, MemGeometry, Sharer, SharerSet};
use hmg_sim::Rng;

const CASES: u64 = 64;

/// Geometry round trips: every address's line contains it, every
/// line's block contains it, pages align.
#[test]
fn geometry_roundtrips() {
    let mut r = Rng::new(0x6E0);
    for _ in 0..512 {
        let raw = r.gen_range(0, 1 << 45);
        let g = MemGeometry::paper_default();
        let a = Addr(raw);
        let line = g.line_of(a);
        assert!(g.line_base(line).0 <= raw);
        assert!(raw < g.line_base(line).0 + g.line_bytes() as u64);
        let block = g.block_of(line);
        assert!(g.lines_of_block(block).any(|l| l == line));
        assert_eq!(g.block_of_addr(a), block);
        assert_eq!(g.page_of(a), g.page_of_line(line));
    }
}

/// A cache never exceeds its capacity, and everything reported
/// resident is actually retrievable.
#[test]
fn cache_capacity_and_residency() {
    for case in 0..CASES {
        let mut r = Rng::new(0xCAC4 + case);
        let n = r.gen_range(1, 600) as usize;
        let lines: Vec<u64> = (0..n).map(|_| r.gen_range(0, 4096)).collect();
        let ways = r.gen_range(1, 8) as u32;
        let capacity = 64 * ways; // 64 sets
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(capacity, ways));
        for (i, &l) in lines.iter().enumerate() {
            c.insert(LineAddr(l), i as u64);
            assert!(c.len() <= capacity as usize);
        }
        for (l, _) in c.iter() {
            assert!(c.peek(l).is_some());
            assert!(lines.contains(&l.0), "resident line was never inserted");
        }
    }
}

/// Insert-then-get returns the last metadata written, unless the
/// line was evicted — and evictions only happen on insertions into
/// the same set.
#[test]
fn cache_last_write_wins() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1457 + case);
        let n = r.gen_range(1, 300) as usize;
        let ops: Vec<(u64, u64)> = (0..n)
            .map(|_| (r.gen_range(0, 256), r.gen_range(0, 1000)))
            .collect();
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(1024, 4));
        let mut model = std::collections::HashMap::new();
        for &(line, meta) in &ops {
            c.insert(LineAddr(line), meta);
            model.insert(line, meta);
        }
        // 256 distinct lines always fit a 1024-line cache: nothing may
        // have been evicted, so cache and model agree exactly.
        for (&line, &meta) in &model {
            assert_eq!(c.peek(LineAddr(line)), Some(&meta));
        }
    }
}

/// invalidate_where(p) removes exactly the lines satisfying `p`.
#[test]
fn cache_selective_invalidation() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5E1E + case);
        let n = r.gen_range(1, 200) as usize;
        let lines: Vec<u64> = (0..n).map(|_| r.gen_range(0, 512)).collect();
        let cutoff = r.gen_range(0, 512);
        let mut c: Cache<u64> = Cache::new(CacheConfig::new(1024, 4));
        for &l in &lines {
            c.insert(LineAddr(l), l);
        }
        let before = c.len();
        let removed = c.invalidate_where(|l, _| l.0 < cutoff);
        assert_eq!(before, c.len() + removed as usize);
        for (l, _) in c.iter() {
            assert!(l.0 >= cutoff);
        }
    }
}

/// SharerSet behaves as a set over the sharer universe.
#[test]
fn sharer_set_is_a_set() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5A2E + case);
        let n_gpms = r.gen_range(0, 20) as usize;
        let n_gpus = r.gen_range(0, 8) as usize;
        let gpms: Vec<u16> = (0..n_gpms).map(|_| r.gen_range(0, 16) as u16).collect();
        let gpus: Vec<u16> = (0..n_gpus).map(|_| r.gen_range(0, 4) as u16).collect();
        let topo = Topology::new(4, 4);
        let mut s = SharerSet::new();
        let mut model = std::collections::HashSet::new();
        for &g in &gpms {
            s.insert(&topo, Sharer::Gpm(GpmId(g)));
            model.insert(Sharer::Gpm(GpmId(g)));
        }
        for &g in &gpus {
            s.insert(&topo, Sharer::Gpu(GpuId(g)));
            model.insert(Sharer::Gpu(GpuId(g)));
        }
        assert_eq!(s.len() as usize, model.len());
        for m in &model {
            assert!(s.contains(&topo, *m));
        }
        let listed: std::collections::HashSet<_> = s.iter(&topo).into_iter().collect();
        assert_eq!(listed, model);
    }
}

/// The directory never exceeds its configured entry count, and any
/// block it reports valid was allocated and not since removed.
#[test]
fn directory_capacity_invariant() {
    for case in 0..CASES {
        let mut r = Rng::new(0xD12C + case);
        let n = r.gen_range(1, 500) as usize;
        let blocks: Vec<u64> = (0..n).map(|_| r.gen_range(0, 10_000)).collect();
        let topo = Topology::new(4, 4);
        let cfg = DirectoryConfig::new(64, 4);
        let mut d = Directory::new(cfg, topo);
        for &b in &blocks {
            let (set, evicted) = d.allocate(BlockAddr(b));
            set.insert(&topo, Sharer::Gpu(GpuId((b % 4) as u16)));
            if let Some((vb, _)) = evicted {
                // The evicted block is gone.
                assert!(vb != BlockAddr(b));
            }
            assert!(d.len() <= cfg.entries as usize);
        }
        // Everything resident was inserted at some point.
        for &b in &blocks {
            if let Some(s) = d.lookup(BlockAddr(b)) {
                assert!(!s.is_empty());
            }
        }
    }
}

/// Allocate-then-remove leaves the directory empty of that block and
/// returns the sharers that were registered.
#[test]
fn directory_remove_returns_registered_sharers() {
    for case in 0..CASES {
        let mut r = Rng::new(0x2E40 + case);
        let block = r.gen_range(0, 1000);
        let n = r.gen_range(1, 6) as usize;
        let sharers: Vec<u16> = (0..n).map(|_| r.gen_range(0, 16) as u16).collect();
        let topo = Topology::new(4, 4);
        let mut d = Directory::new(DirectoryConfig::new(256, 4), topo);
        {
            let (set, _) = d.allocate(BlockAddr(block));
            for &s in &sharers {
                set.insert(&topo, Sharer::Gpm(GpmId(s)));
            }
        }
        let got = d.remove(BlockAddr(block)).expect("present");
        let distinct: std::collections::HashSet<_> = sharers.iter().collect();
        assert_eq!(got.len() as usize, distinct.len());
        assert!(d.lookup(BlockAddr(block)).is_none());
    }
}
