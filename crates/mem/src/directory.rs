//! The NHCC/HMG coherence directory.
//!
//! A set-associative structure attached to every GPM's L2 slice
//! (Section IV-A). Each entry tracks one *block* (four cache lines in the
//! paper's configuration) in one of two stable states — Valid (present)
//! and Invalid (absent) — plus the set of sharers. Under HMG the sharer
//! set is hierarchical: other GPMs of the home GPU are tracked
//! individually, while remote GPUs are tracked as whole GPUs (Section V-A).

use hmg_interconnect::{GpmId, GpuId, Topology};
use hmg_protocol::{try_transition, DirEvent, DirState, Outcome};
use hmg_sim::SimError;

use crate::addr::BlockAddr;

/// One tracked sharer: either a specific GPM (a module of the home GPU,
/// or any GPM under flat NHCC tracking) or a whole GPU (HMG's inter-GPU
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sharer {
    /// A GPU module, identified by its global index.
    Gpm(GpmId),
    /// A whole GPU (tracked by the system home node under HMG).
    Gpu(GpuId),
}

impl std::fmt::Display for Sharer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sharer::Gpm(g) => write!(f, "{g}"),
            Sharer::Gpu(g) => write!(f, "{g}"),
        }
    }
}

/// A compact set of [`Sharer`]s: one bit per GPM in the system plus one
/// bit per GPU. Sized for systems up to 48 GPMs + 16 GPUs.
///
/// A set can degrade to *broadcast mode* (see
/// [`SharerSet::insert_capped`]): precise tracking is abandoned and the
/// entry conservatively means "anyone may be sharing". Broadcast sets
/// answer [`SharerSet::contains`] with `true` for every sharer, are
/// never empty, and enumerate no precise members — the caller must
/// substitute the full target list when invalidating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharerSet {
    bits: u64,
    broadcast: bool,
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet::default()
    }

    fn slot(topo: &Topology, s: Sharer) -> u32 {
        match s {
            Sharer::Gpm(g) => {
                assert!(g.0 < topo.num_gpms(), "{g} out of range");
                g.0 as u32
            }
            Sharer::Gpu(g) => {
                assert!(g.0 < topo.num_gpus(), "{g} out of range");
                topo.num_gpms() as u32 + g.0 as u32
            }
        }
    }

    /// Adds a sharer; returns `true` if it was newly added. A broadcast
    /// set already covers everyone, so inserts into it are no-ops.
    pub fn insert(&mut self, topo: &Topology, s: Sharer) -> bool {
        if self.broadcast {
            return false;
        }
        let mask = 1u64 << Self::slot(topo, s);
        let added = self.bits & mask == 0;
        self.bits |= mask;
        added
    }

    /// Adds a sharer under a limited-pointer cap (graceful degradation).
    ///
    /// With `cap == None` this is exactly [`SharerSet::insert`]. With a
    /// cap, an insertion that would grow the set past `cap` precise
    /// sharers instead flips the set into broadcast mode: the precise
    /// bits are discarded and the block must from now on be invalidated
    /// by broadcast — correct but slower. Returns `(added,
    /// newly_broadcast)`; `newly_broadcast` is `true` exactly once per
    /// degradation so callers can count the fallback rate.
    pub fn insert_capped(&mut self, topo: &Topology, s: Sharer, cap: Option<u32>) -> (bool, bool) {
        let Some(cap) = cap else {
            return (self.insert(topo, s), false);
        };
        if self.broadcast || self.contains(topo, s) {
            return (false, false);
        }
        if self.len() >= cap {
            self.bits = 0;
            self.broadcast = true;
            return (false, true);
        }
        (self.insert(topo, s), false)
    }

    /// Whether the set has degraded to broadcast mode.
    pub fn is_broadcast(&self) -> bool {
        self.broadcast
    }

    /// Removes a sharer; returns `true` if it was present. A broadcast
    /// set cannot un-learn a member: it stays broadcast (conservative).
    pub fn remove(&mut self, topo: &Topology, s: Sharer) -> bool {
        if self.broadcast {
            return false;
        }
        let mask = 1u64 << Self::slot(topo, s);
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// Whether `s` is in the set. Broadcast sets may be sharing with
    /// anyone, so they answer `true` for every sharer.
    pub fn contains(&self, topo: &Topology, s: Sharer) -> bool {
        self.broadcast || self.bits & (1u64 << Self::slot(topo, s)) != 0
    }

    /// Number of *precisely tracked* sharers (0 in broadcast mode).
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the set tracks nobody. Broadcast sets are never empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0 && !self.broadcast
    }

    /// Removes all sharers and leaves broadcast mode.
    pub fn clear(&mut self) {
        self.bits = 0;
        self.broadcast = false;
    }

    /// Forces the set into broadcast mode, discarding precise bits.
    /// Used by fail-in-place re-homing: a re-homed entry's precise
    /// sharer list died with its directory, so the rebuilt entry must
    /// conservatively mean "anyone may be sharing".
    pub fn force_broadcast(&mut self) {
        self.bits = 0;
        self.broadcast = true;
    }

    /// Enumerates the precisely tracked sharers in the set. Broadcast
    /// sets enumerate nothing — check [`SharerSet::is_broadcast`] first
    /// and substitute the full target list.
    pub fn iter(&self, topo: &Topology) -> Vec<Sharer> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for gpm in topo.all_gpms() {
            if self.bits & (1u64 << (gpm.0 as u32)) != 0 {
                out.push(Sharer::Gpm(gpm));
            }
        }
        for gpu in topo.all_gpus() {
            if self.bits & (1u64 << (topo.num_gpms() as u32 + gpu.0 as u32)) != 0 {
                out.push(Sharer::Gpu(gpu));
            }
        }
        out
    }
}

/// Shape of one GPM's coherence directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectoryConfig {
    /// Total entries (Table II: 12K per GPM).
    pub entries: u32,
    /// Ways per set.
    pub ways: u32,
    /// Limited-pointer cap: the most precise sharers one entry tracks
    /// before it degrades to broadcast mode. `None` (the default, and
    /// the paper's configuration) tracks every sharer precisely — the
    /// full bit-vector always fits.
    pub max_sharers: Option<u32>,
}

impl DirectoryConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `entries` is not a multiple of
    /// `ways`. (Unlike the data caches, the directory permits a
    /// non-power-of-two set count; indexing uses modulo.)
    pub fn new(entries: u32, ways: u32) -> Self {
        // audit:allow(panic-path): documented panicking wrapper over try_new.
        Self::try_new(entries, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DirectoryConfig::new`]: returns a typed
    /// [`SimError`] instead of panicking on a bad geometry.
    pub fn try_new(entries: u32, ways: u32) -> Result<Self, SimError> {
        if entries == 0 || ways == 0 {
            return Err(SimError::config(format!(
                "directory dimensions must be positive (entries={entries}, ways={ways})"
            )));
        }
        if !entries.is_multiple_of(ways) {
            return Err(SimError::config(format!(
                "entries must divide evenly into ways (entries={entries}, ways={ways})"
            )));
        }
        Ok(DirectoryConfig {
            entries,
            ways,
            max_sharers: None,
        })
    }

    /// Returns the configuration with a limited-pointer sharer cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (an entry that can track nobody would
    /// degrade on its first sharer, which is a misconfiguration).
    pub fn with_max_sharers(mut self, cap: u32) -> Self {
        assert!(cap > 0, "sharer cap must be positive");
        self.max_sharers = Some(cap);
        self
    }

    /// Table II: 12K entries per GPM, 16-way.
    pub fn paper_default() -> Self {
        DirectoryConfig::new(12 * 1024, 16)
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// Counters the evaluation reads out of the directory (Figs. 9 and 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Entries evicted for capacity/conflict reasons.
    pub evictions: u64,
    /// Evictions whose entry still tracked at least one sharer (these are
    /// the ones that cost invalidation messages).
    pub evictions_with_sharers: u64,
    /// Total sharers held by evicted entries.
    pub evicted_sharers: u64,
    /// Entries currently allocated.
    pub allocations: u64,
    /// Entries that overflowed their limited-pointer cap and degraded
    /// to broadcast tracking (the graceful-degradation rate).
    pub broadcast_fallbacks: u64,
}

#[derive(Debug, Clone)]
struct DirWay {
    tag: u64,
    last_use: u64,
    sharers: SharerSet,
}

/// One GPM's coherence directory: block-granular, set-associative,
/// LRU-replaced. Presence in the directory is the Valid state of
/// Table I; absence is Invalid.
///
/// # Example
///
/// ```
/// use hmg_mem::{Directory, DirectoryConfig, Sharer};
/// use hmg_mem::addr::BlockAddr;
/// use hmg_interconnect::{Topology, GpmId};
///
/// let topo = Topology::new(2, 2);
/// let mut dir = Directory::new(DirectoryConfig::new(64, 4), topo);
/// let (set, evicted) = dir.allocate(BlockAddr(9));
/// assert!(evicted.is_none());
/// set.insert(&topo, Sharer::Gpm(GpmId(1)));
/// assert!(dir.lookup(BlockAddr(9)).is_some());
/// ```
#[derive(Debug)]
pub struct Directory {
    config: DirectoryConfig,
    topo: Topology,
    sets: Vec<Vec<DirWay>>,
    /// Strength-reduced `(tag, set)` splitter for the set count.
    split: crate::fastdiv::SetSplit,
    tick: u64,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new(config: DirectoryConfig, topo: Topology) -> Self {
        Directory {
            config,
            topo,
            sets: (0..config.sets()).map(|_| Vec::new()).collect(),
            split: crate::fastdiv::SetSplit::new(config.sets()),
            tick: 0,
            stats: DirectoryStats::default(),
        }
    }

    /// The configuration the directory was built with.
    pub fn config(&self) -> DirectoryConfig {
        self.config
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        self.split.split(block.0).1 as usize
    }

    #[inline]
    fn tag(&self, block: BlockAddr) -> u64 {
        self.split.split(block.0).0
    }

    /// Looks up `block` without touching recency.
    pub fn lookup(&self, block: BlockAddr) -> Option<&SharerSet> {
        let tag = self.tag(block);
        self.sets[self.set_index(block)]
            .iter()
            .find(|w| w.tag == tag)
            .map(|w| &w.sharers)
    }

    /// Looks up `block`, refreshing LRU recency on a hit.
    pub fn lookup_mut(&mut self, block: BlockAddr) -> Option<&mut SharerSet> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(block);
        let tag = self.tag(block);
        self.sets[idx].iter_mut().find(|w| w.tag == tag).map(|w| {
            w.last_use = tick;
            &mut w.sharers
        })
    }

    /// Finds or creates the entry for `block`. If the set is full, the
    /// LRU victim is evicted and returned — the caller must send
    /// invalidations to the victim's sharers (Table I, "Replace Dir
    /// Entry").
    pub fn allocate(
        &mut self,
        block: BlockAddr,
    ) -> (&mut SharerSet, Option<(BlockAddr, SharerSet)>) {
        self.tick += 1;
        let tick = self.tick;
        let sets_count = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        let idx = self.set_index(block);
        let tag = self.tag(block);

        let pos = self.sets[idx].iter().position(|w| w.tag == tag);
        if let Some(p) = pos {
            self.sets[idx][p].last_use = tick;
            return (&mut self.sets[idx][p].sharers, None);
        }

        self.stats.allocations += 1;
        if self.sets[idx].len() < ways {
            self.sets[idx].push(DirWay {
                tag,
                last_use: tick,
                sharers: SharerSet::new(),
            });
            let last = self.sets[idx].len() - 1;
            return (&mut self.sets[idx][last].sharers, None);
        }

        // The set is full here (len == ways >= 1), so the minimum
        // always exists; the fallback avoids a panic path.
        let victim_i = self.sets[idx]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let victim = std::mem::replace(
            &mut self.sets[idx][victim_i],
            DirWay {
                tag,
                last_use: tick,
                sharers: SharerSet::new(),
            },
        );
        self.stats.evictions += 1;
        if !victim.sharers.is_empty() {
            self.stats.evictions_with_sharers += 1;
            self.stats.evicted_sharers += victim.sharers.len() as u64;
        }
        let victim_block = BlockAddr(victim.tag * sets_count + idx as u64);
        (
            &mut self.sets[idx][victim_i].sharers,
            Some((victim_block, victim.sharers)),
        )
    }

    /// The Table I state of `block`: Valid iff the entry is resident.
    ///
    /// This is the conformance bridge between the structure and the
    /// static table — the engine samples `state_of` before mutating the
    /// directory, applies the operation, and checks the observed effect
    /// against [`hmg_protocol::try_transition`] for that state.
    pub fn state_of(&self, block: BlockAddr) -> DirState {
        if self.lookup(block).is_some() {
            DirState::Valid
        } else {
            DirState::Invalid
        }
    }

    /// What Table I says must happen if `block` observes `event` now.
    /// `None` marks cells the table leaves undefined (see
    /// [`hmg_protocol::try_transition`]); a conforming engine never
    /// drives the directory into one.
    pub fn expected_outcome(
        &self,
        block: BlockAddr,
        event: DirEvent,
        hmg: bool,
    ) -> Option<Outcome> {
        try_transition(self.state_of(block), event, hmg)
    }

    /// Deallocates `block` (the V→I transition on a local store), returning
    /// the sharers that must be invalidated.
    pub fn remove(&mut self, block: BlockAddr) -> Option<SharerSet> {
        let idx = self.set_index(block);
        let tag = self.tag(block);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.tag == tag)?;
        Some(set.swap_remove(pos).sharers)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters for the Figs. 9–10 analyses.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Enumerates every resident entry as `(block, sharers)`, in
    /// deterministic set/way order. Used by the fail-in-place
    /// reconfiguration to walk a dead GPM's directory and re-home its
    /// entries onto survivors.
    pub fn resident_blocks(&self) -> Vec<(BlockAddr, SharerSet)> {
        let sets_count = self.config.sets() as u64;
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(idx, set)| {
                set.iter()
                    .map(move |w| (BlockAddr(w.tag * sets_count + idx as u64), w.sharers))
            })
            .collect()
    }

    /// The `n`th resident entry in deterministic set/way order, or
    /// `None` when fewer than `n + 1` entries are resident. Fault
    /// injection uses this to pick a victim entry reproducibly.
    pub fn nth_resident_block(&self, n: usize) -> Option<BlockAddr> {
        let sets_count = self.config.sets() as u64;
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(idx, set)| {
                set.iter()
                    .map(move |w| BlockAddr(w.tag * sets_count + idx as u64))
            })
            .nth(n)
    }

    /// Removes `sharer` from every resident entry (a dead component
    /// must not be sent invalidations); returns how many entries
    /// tracked it. Broadcast entries are untouched — they stay
    /// conservative and the engine's target-list substitution skips
    /// dead nodes.
    pub fn purge_sharer(&mut self, sharer: Sharer) -> u64 {
        let topo = self.topo;
        let mut purged = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.sharers.remove(&topo, sharer) {
                    purged += 1;
                }
            }
        }
        purged
    }

    /// Records one limited-pointer overflow: an entry of this directory
    /// degraded to broadcast tracking. Called by the engine when
    /// [`SharerSet::insert_capped`] reports a fresh degradation (the
    /// engine holds the set borrow at that moment, so the counter bump
    /// happens through this separate method).
    pub fn note_broadcast_fallback(&mut self) {
        self.stats.broadcast_fallbacks += 1;
    }

    /// Storage cost of this directory in bits per entry and total bytes,
    /// reproducing the §VII-C arithmetic: tag bits + 1 state bit +
    /// one sharer bit per trackable sharer (M + N − 2 hierarchically).
    pub fn storage_cost(&self, tag_bits: u32) -> StorageCost {
        let sharer_bits = self.topo.max_hierarchical_sharers() as u32;
        let bits_per_entry = tag_bits + 1 + sharer_bits;
        let total_bits = bits_per_entry as u64 * self.config.entries as u64;
        StorageCost {
            bits_per_entry,
            total_bytes: total_bits / 8,
        }
    }
}

impl hmg_sim::SnapshotWrite for SharerSet {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u64(self.bits);
        w.put_u8(u8::from(self.broadcast));
    }
}

impl hmg_sim::SnapshotRead for SharerSet {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let bits = r.get_u64()?;
        let broadcast = match r.get_u8()? {
            0 => false,
            1 => true,
            b => {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "sharer-set broadcast flag {b}"
                )))
            }
        };
        if broadcast && bits != 0 {
            return Err(hmg_sim::SnapError::Malformed(
                "broadcast sharer set with precise bits".into(),
            ));
        }
        Ok(SharerSet { bits, broadcast })
    }
}

impl hmg_sim::SnapshotWrite for DirectoryStats {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u64(self.evictions);
        w.put_u64(self.evictions_with_sharers);
        w.put_u64(self.evicted_sharers);
        w.put_u64(self.allocations);
        w.put_u64(self.broadcast_fallbacks);
    }
}

impl hmg_sim::SnapshotRead for DirectoryStats {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(DirectoryStats {
            evictions: r.get_u64()?,
            evictions_with_sharers: r.get_u64()?,
            evicted_sharers: r.get_u64()?,
            allocations: r.get_u64()?,
            broadcast_fallbacks: r.get_u64()?,
        })
    }
}

impl hmg_sim::SnapshotWrite for Directory {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u32(self.config.entries);
        w.put_u32(self.config.ways);
        self.config.max_sharers.write_snap(w);
        self.topo.write_snap(w);
        w.put_u64(self.tick);
        self.stats.write_snap(w);
        for set in &self.sets {
            w.put_u32(set.len() as u32);
            for way in set {
                w.put_u64(way.tag);
                w.put_u64(way.last_use);
                way.sharers.write_snap(w);
            }
        }
    }
}

impl hmg_sim::SnapshotRead for Directory {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let entries = r.get_u32()?;
        let ways = r.get_u32()?;
        let max_sharers = Option::<u32>::read_snap(r)?;
        let mut config = DirectoryConfig::try_new(entries, ways)
            .map_err(|e| hmg_sim::SnapError::Malformed(e.to_string()))?;
        if let Some(cap) = max_sharers {
            if cap == 0 {
                return Err(hmg_sim::SnapError::Malformed(
                    "zero directory sharer cap".into(),
                ));
            }
            config = config.with_max_sharers(cap);
        }
        let topo = hmg_interconnect::Topology::read_snap(r)?;
        let mut dir = Directory::new(config, topo);
        dir.tick = r.get_u64()?;
        dir.stats = DirectoryStats::read_snap(r)?;
        for idx in 0..config.sets() as usize {
            let len = r.get_u32()?;
            if len > config.ways {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "directory set {idx} claims {len} ways of {}",
                    config.ways
                )));
            }
            let set = &mut dir.sets[idx];
            for _ in 0..len {
                set.push(DirWay {
                    tag: r.get_u64()?,
                    last_use: r.get_u64()?,
                    sharers: SharerSet::read_snap(r)?,
                });
            }
        }
        Ok(dir)
    }
}

/// Result of [`Directory::storage_cost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageCost {
    /// Bits of storage per directory entry (55 in §VII-C).
    pub bits_per_entry: u32,
    /// Total bytes across all entries (84 KB per GPM in §VII-C).
    pub total_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 4)
    }

    #[test]
    fn sharer_set_insert_remove_contains() {
        let t = topo();
        let mut s = SharerSet::new();
        assert!(s.insert(&t, Sharer::Gpm(GpmId(3))));
        assert!(!s.insert(&t, Sharer::Gpm(GpmId(3))), "duplicate insert");
        assert!(s.insert(&t, Sharer::Gpu(GpuId(2))));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&t, Sharer::Gpm(GpmId(3))));
        assert!(!s.contains(&t, Sharer::Gpm(GpmId(2))));
        assert!(s.remove(&t, Sharer::Gpm(GpmId(3))));
        assert!(!s.remove(&t, Sharer::Gpm(GpmId(3))));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sharer_set_gpm_and_gpu_slots_do_not_collide() {
        let t = topo();
        let mut s = SharerSet::new();
        // GpmId(0) and GpuId(0) are distinct sharers.
        s.insert(&t, Sharer::Gpm(GpmId(0)));
        assert!(!s.contains(&t, Sharer::Gpu(GpuId(0))));
        s.insert(&t, Sharer::Gpu(GpuId(0)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sharer_set_iter_roundtrip() {
        let t = topo();
        let mut s = SharerSet::new();
        let members = [
            Sharer::Gpm(GpmId(1)),
            Sharer::Gpm(GpmId(9)),
            Sharer::Gpu(GpuId(3)),
        ];
        for &m in &members {
            s.insert(&t, m);
        }
        let got = s.iter(&t);
        assert_eq!(got.len(), 3);
        for m in members {
            assert!(got.contains(&m));
        }
    }

    #[test]
    fn capped_insert_degrades_to_broadcast_once() {
        let t = topo();
        let mut s = SharerSet::new();
        let cap = Some(2);
        assert_eq!(
            s.insert_capped(&t, Sharer::Gpm(GpmId(1)), cap),
            (true, false)
        );
        assert_eq!(
            s.insert_capped(&t, Sharer::Gpm(GpmId(2)), cap),
            (true, false)
        );
        // Re-inserting a member never degrades.
        assert_eq!(
            s.insert_capped(&t, Sharer::Gpm(GpmId(1)), cap),
            (false, false)
        );
        // The third distinct sharer overflows the cap.
        assert_eq!(
            s.insert_capped(&t, Sharer::Gpm(GpmId(3)), cap),
            (false, true)
        );
        assert!(s.is_broadcast());
        // Degradation is reported exactly once.
        assert_eq!(
            s.insert_capped(&t, Sharer::Gpu(GpuId(1)), cap),
            (false, false)
        );
        // Broadcast is conservative: everyone may be sharing, nobody
        // can be removed, and the set is never empty.
        assert!(s.contains(&t, Sharer::Gpm(GpmId(9))));
        assert!(!s.remove(&t, Sharer::Gpm(GpmId(1))));
        assert!(s.is_broadcast());
        assert!(!s.is_empty());
        assert!(s.iter(&t).is_empty(), "no precise members to enumerate");
        s.clear();
        assert!(!s.is_broadcast() && s.is_empty());
    }

    #[test]
    fn uncapped_insert_never_degrades() {
        let t = topo();
        let mut s = SharerSet::new();
        for gpm in t.all_gpms() {
            s.insert_capped(&t, Sharer::Gpm(gpm), None);
        }
        assert!(!s.is_broadcast());
        assert_eq!(s.len(), t.num_gpms() as u32);
    }

    #[test]
    fn directory_counts_broadcast_fallbacks() {
        let t = topo();
        let cfg = DirectoryConfig::new(64, 4).with_max_sharers(1);
        assert_eq!(cfg.max_sharers, Some(1));
        let mut d = Directory::new(cfg, t);
        let cap = cfg.max_sharers;
        let (set, _) = d.allocate(BlockAddr(5));
        set.insert_capped(&t, Sharer::Gpm(GpmId(0)), cap);
        let (_, newly) = set.insert_capped(&t, Sharer::Gpm(GpmId(1)), cap);
        assert!(newly);
        d.note_broadcast_fallback();
        assert_eq!(d.stats().broadcast_fallbacks, 1);
        // An evicted broadcast entry still reports "had sharers", so
        // eviction invalidations fire for it.
        assert!(!d.lookup(BlockAddr(5)).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_sharer_cap_rejected() {
        DirectoryConfig::new(64, 4).with_max_sharers(0);
    }

    #[test]
    fn directory_allocate_then_lookup() {
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(64, 4), t);
        {
            let (set, ev) = d.allocate(BlockAddr(100));
            assert!(ev.is_none());
            set.insert(&t, Sharer::Gpu(GpuId(1)));
        }
        let s = d.lookup(BlockAddr(100)).expect("present");
        assert!(s.contains(&t, Sharer::Gpu(GpuId(1))));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn directory_eviction_returns_sharers() {
        let t = topo();
        // 4 entries, 1 way: 4 sets; blocks 0 and 4 collide in set 0.
        let mut d = Directory::new(DirectoryConfig::new(4, 1), t);
        {
            let (set, _) = d.allocate(BlockAddr(0));
            set.insert(&t, Sharer::Gpm(GpmId(2)));
        }
        let (_, evicted) = d.allocate(BlockAddr(4));
        let (block, sharers) = evicted.expect("conflict eviction");
        assert_eq!(block, BlockAddr(0));
        assert!(sharers.contains(&t, Sharer::Gpm(GpmId(2))));
        assert_eq!(d.stats().evictions, 1);
        assert_eq!(d.stats().evictions_with_sharers, 1);
        assert_eq!(d.stats().evicted_sharers, 1);
    }

    #[test]
    fn directory_eviction_of_sharerless_entry_is_cheap() {
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(4, 1), t);
        d.allocate(BlockAddr(0));
        d.allocate(BlockAddr(4));
        assert_eq!(d.stats().evictions, 1);
        assert_eq!(d.stats().evictions_with_sharers, 0);
    }

    #[test]
    fn directory_remove_is_v_to_i() {
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(64, 4), t);
        {
            let (set, _) = d.allocate(BlockAddr(7));
            set.insert(&t, Sharer::Gpm(GpmId(1)));
            set.insert(&t, Sharer::Gpu(GpuId(2)));
        }
        let sharers = d.remove(BlockAddr(7)).expect("present");
        assert_eq!(sharers.len(), 2);
        assert!(d.lookup(BlockAddr(7)).is_none());
        assert!(d.remove(BlockAddr(7)).is_none());
    }

    #[test]
    fn resident_blocks_roundtrip_and_purge() {
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(64, 4), t);
        {
            let (set, _) = d.allocate(BlockAddr(3));
            set.insert(&t, Sharer::Gpm(GpmId(5)));
            set.insert(&t, Sharer::Gpu(GpuId(2)));
        }
        {
            let (set, _) = d.allocate(BlockAddr(67)); // same set as 3
            set.insert(&t, Sharer::Gpm(GpmId(5)));
        }
        let mut blocks: Vec<BlockAddr> = d.resident_blocks().into_iter().map(|(b, _)| b).collect();
        blocks.sort();
        assert_eq!(blocks, vec![BlockAddr(3), BlockAddr(67)]);
        assert_eq!(d.purge_sharer(Sharer::Gpm(GpmId(5))), 2);
        assert_eq!(d.purge_sharer(Sharer::Gpm(GpmId(5))), 0, "idempotent");
        assert!(d
            .lookup(BlockAddr(3))
            .unwrap()
            .contains(&t, Sharer::Gpu(GpuId(2))));
        assert!(d.lookup(BlockAddr(67)).unwrap().is_empty());
    }

    #[test]
    fn force_broadcast_is_sticky_and_conservative() {
        let t = topo();
        let mut s = SharerSet::new();
        s.insert(&t, Sharer::Gpm(GpmId(1)));
        s.force_broadcast();
        assert!(s.is_broadcast());
        assert!(s.contains(&t, Sharer::Gpm(GpmId(9))));
        assert!(s.iter(&t).is_empty(), "no precise members");
        // Purging from a broadcast entry is a no-op (stays conservative).
        let mut d = Directory::new(DirectoryConfig::new(4, 1), t);
        d.allocate(BlockAddr(0)).0.force_broadcast();
        assert_eq!(d.purge_sharer(Sharer::Gpm(GpmId(1))), 0);
        assert!(d.lookup(BlockAddr(0)).unwrap().is_broadcast());
    }

    #[test]
    fn nth_resident_block_matches_resident_blocks_order() {
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(64, 4), t);
        for b in [3u64, 67, 12] {
            d.allocate(BlockAddr(b));
        }
        let listed: Vec<BlockAddr> = d.resident_blocks().into_iter().map(|(b, _)| b).collect();
        for (n, &b) in listed.iter().enumerate() {
            assert_eq!(d.nth_resident_block(n), Some(b));
        }
        assert_eq!(d.nth_resident_block(listed.len()), None);
    }

    #[test]
    fn lru_replacement_in_directory() {
        let t = topo();
        // 2 entries, 2 ways: single set.
        let mut d = Directory::new(DirectoryConfig::new(2, 2), t);
        d.allocate(BlockAddr(10));
        d.allocate(BlockAddr(20));
        d.lookup_mut(BlockAddr(10)); // 20 becomes LRU
        let (_, ev) = d.allocate(BlockAddr(30));
        assert_eq!(ev.expect("eviction").0, BlockAddr(20));
    }

    #[test]
    fn paper_storage_cost() {
        // §VII-C: 48-bit tags + 1 state bit + 6 sharers = 55 bits/entry;
        // 12K entries -> 84 KB (84,480 bytes).
        let t = topo();
        let d = Directory::new(DirectoryConfig::paper_default(), t);
        let cost = d.storage_cost(48);
        assert_eq!(cost.bits_per_entry, 55);
        assert_eq!(cost.total_bytes, 84_480);
        // 2.7% of a 3 MB L2 slice.
        let frac = cost.total_bytes as f64 / (3.0 * 1024.0 * 1024.0);
        assert!((frac - 0.027).abs() < 0.001, "frac={frac}");
    }

    #[test]
    fn snapshot_round_trip_preserves_entries_sharers_and_lru() {
        use hmg_sim::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let t = topo();
        let mut d = Directory::new(DirectoryConfig::new(8, 2).with_max_sharers(3), t);
        {
            let (set, _) = d.allocate(BlockAddr(3));
            set.insert(&t, Sharer::Gpm(GpmId(5)));
            set.insert(&t, Sharer::Gpu(GpuId(2)));
        }
        d.allocate(BlockAddr(7)).0.force_broadcast();
        d.allocate(BlockAddr(11));
        d.lookup_mut(BlockAddr(3)); // perturb recency
        let mut w = SnapWriter::new();
        d.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = Directory::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.config(), d.config());
        assert_eq!(back.stats(), d.stats());
        assert_eq!(back.resident_blocks(), d.resident_blocks());
        assert!(back.lookup(BlockAddr(7)).unwrap().is_broadcast());
        // Same future behavior: identical LRU victim on the next conflict.
        let (_, ev_orig) = d.allocate(BlockAddr(103));
        let (_, ev_back) = back.allocate(BlockAddr(103));
        assert_eq!(ev_orig.map(|e| e.0), ev_back.map(|e| e.0));
    }

    #[test]
    fn snapshot_refuses_broadcast_set_with_precise_bits_and_overfull_sets() {
        use hmg_sim::{SnapError, SnapReader, SnapWriter, SnapshotRead};
        let mut w = SnapWriter::new();
        w.put_u64(0b101); // precise bits...
        w.put_u8(1); // ...and broadcast: impossible
        assert!(matches!(
            SharerSet::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(SnapError::Malformed(_))
        ));

        let mut w = SnapWriter::new();
        w.put_u32(4); // entries
        w.put_u32(2); // ways
        w.put_u8(0); // no sharer cap
        w.put_u16(2); // topology 2x2
        w.put_u16(2);
        w.put_u64(0); // tick
        for _ in 0..5 {
            w.put_u64(0); // stats
        }
        w.put_u32(3); // set 0 claims 3 ways of 2
        assert!(matches!(
            Directory::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn non_power_of_two_sets_allowed() {
        let t = topo();
        let cfg = DirectoryConfig::paper_default();
        assert_eq!(cfg.sets(), 768);
        let mut d = Directory::new(cfg, t);
        for b in 0..10_000u64 {
            d.allocate(BlockAddr(b));
        }
        assert!(d.len() <= cfg.entries as usize);
    }
}
