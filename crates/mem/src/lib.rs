#![warn(missing_docs)]

//! Memory-system substrate: addresses, caches, coherence directory,
//! DRAM partitions, and NUMA page placement.
//!
//! These are the passive structures the coherence protocols (crate
//! `hmg-protocol`) and the GPU model (crate `hmg-gpu`) are built from:
//!
//! * [`addr`] — byte addresses, cache lines, directory blocks, pages
//!   (defined in `hmg-sim` and re-exported here for compatibility).
//! * [`cache`] — a set-associative LRU cache with per-line metadata.
//! * [`directory`] — the NHCC/HMG coherence directory: set-associative,
//!   coarse-grained (each entry covers several lines), hierarchical
//!   sharer tracking (GPM sharers + GPU sharers).
//! * [`dram`] — a bandwidth/latency-modeled local DRAM partition per GPM.
//! * [`page`] — first-touch (or interleaved) page placement deciding each
//!   address's *system home* GPM, plus the HMG *GPU home* hash.
//! * [`version`] — the authoritative per-line version store used by the
//!   functional coherence checker.

pub use hmg_sim::addr;

pub mod cache;
pub mod directory;
pub mod dram;
pub mod fastdiv;
pub mod page;
pub mod version;

pub use addr::{Addr, BlockAddr, LineAddr, MemGeometry, PageId};
pub use cache::{Cache, CacheConfig};
pub use directory::{Directory, DirectoryConfig, DirectoryStats, Sharer, SharerSet};
pub use dram::Dram;
pub use page::{PageMap, PagePlacement};
pub use version::VersionStore;
