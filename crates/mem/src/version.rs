//! Authoritative per-line version tracking.
//!
//! The simulator does not model data values; instead every committed
//! store bumps a monotone *version* for its cache line at the system home.
//! Cached copies remember the version they were filled with, which lets
//! the functional coherence checker (tests/coherence_checker.rs) assert
//! that synchronized readers never observe a version older than the one
//! the synchronization guarantees.

use hmg_sim::collect::FlatMap;

use crate::addr::LineAddr;

/// The authoritative version of every line in global memory. Lines start
/// at version 0 (their initial contents).
///
/// # Example
///
/// ```
/// use hmg_mem::VersionStore;
/// use hmg_mem::addr::LineAddr;
///
/// let mut vs = VersionStore::new();
/// assert_eq!(vs.current(LineAddr(3)), 0);
/// assert_eq!(vs.bump(LineAddr(3)), 1);
/// assert_eq!(vs.bump(LineAddr(3)), 2);
/// assert_eq!(vs.current(LineAddr(3)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionStore {
    versions: FlatMap<LineAddr, u64>,
    stores_committed: u64,
}

impl VersionStore {
    /// Creates an empty store (all lines at version 0).
    pub fn new() -> Self {
        VersionStore::default()
    }

    /// The current version of `line`.
    pub fn current(&self, line: LineAddr) -> u64 {
        self.versions.get(&line).copied().unwrap_or(0)
    }

    /// Commits a store to `line`, returning the new version.
    pub fn bump(&mut self, line: LineAddr) -> u64 {
        self.stores_committed += 1;
        let v = self.versions.or_insert(line, 0);
        *v += 1;
        *v
    }

    /// Total stores committed across all lines.
    pub fn stores_committed(&self) -> u64 {
        self.stores_committed
    }

    /// Number of distinct lines ever written.
    pub fn lines_written(&self) -> usize {
        self.versions.len()
    }
}

impl hmg_sim::SnapshotWrite for VersionStore {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.versions.write_snap(w);
        w.put_u64(self.stores_committed);
    }
}

impl hmg_sim::SnapshotRead for VersionStore {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(VersionStore {
            versions: FlatMap::read_snap(r)?,
            stores_committed: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_per_line() {
        let mut vs = VersionStore::new();
        let mut prev = 0;
        for _ in 0..10 {
            let v = vs.bump(LineAddr(1));
            assert!(v > prev);
            prev = v;
        }
        assert_eq!(vs.current(LineAddr(1)), 10);
    }

    #[test]
    fn lines_are_independent() {
        let mut vs = VersionStore::new();
        vs.bump(LineAddr(1));
        vs.bump(LineAddr(1));
        vs.bump(LineAddr(2));
        assert_eq!(vs.current(LineAddr(1)), 2);
        assert_eq!(vs.current(LineAddr(2)), 1);
        assert_eq!(vs.current(LineAddr(3)), 0);
        assert_eq!(vs.stores_committed(), 3);
        assert_eq!(vs.lines_written(), 2);
    }

    #[test]
    fn snapshot_round_trip() {
        use hmg_sim::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let mut vs = VersionStore::new();
        for l in 0..10u64 {
            for _ in 0..=l {
                vs.bump(LineAddr(l));
            }
        }
        let mut w = SnapWriter::new();
        vs.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = VersionStore::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.stores_committed(), vs.stores_committed());
        assert_eq!(back.lines_written(), vs.lines_written());
        for l in 0..10u64 {
            assert_eq!(back.current(LineAddr(l)), vs.current(LineAddr(l)));
        }
    }
}
