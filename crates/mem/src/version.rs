//! Authoritative per-line version tracking.
//!
//! The simulator does not model data values; instead every committed
//! store bumps a monotone *version* for its cache line at the system home.
//! Cached copies remember the version they were filled with, which lets
//! the functional coherence checker (tests/coherence_checker.rs) assert
//! that synchronized readers never observe a version older than the one
//! the synchronization guarantees.

use hmg_sim::collect::FlatMap;

use crate::addr::LineAddr;

/// The authoritative version of every line in global memory. Lines start
/// at version 0 (their initial contents).
///
/// # Example
///
/// ```
/// use hmg_mem::VersionStore;
/// use hmg_mem::addr::LineAddr;
///
/// let mut vs = VersionStore::new();
/// assert_eq!(vs.current(LineAddr(3)), 0);
/// assert_eq!(vs.bump(LineAddr(3)), 1);
/// assert_eq!(vs.bump(LineAddr(3)), 2);
/// assert_eq!(vs.current(LineAddr(3)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionStore {
    versions: FlatMap<LineAddr, u64>,
    stores_committed: u64,
}

impl VersionStore {
    /// Creates an empty store (all lines at version 0).
    pub fn new() -> Self {
        VersionStore::default()
    }

    /// The current version of `line`.
    pub fn current(&self, line: LineAddr) -> u64 {
        self.versions.get(&line).copied().unwrap_or(0)
    }

    /// Commits a store to `line`, returning the new version.
    pub fn bump(&mut self, line: LineAddr) -> u64 {
        self.stores_committed += 1;
        let v = self.versions.or_insert(line, 0);
        *v += 1;
        *v
    }

    /// Total stores committed across all lines.
    pub fn stores_committed(&self) -> u64 {
        self.stores_committed
    }

    /// Number of distinct lines ever written.
    pub fn lines_written(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_per_line() {
        let mut vs = VersionStore::new();
        let mut prev = 0;
        for _ in 0..10 {
            let v = vs.bump(LineAddr(1));
            assert!(v > prev);
            prev = v;
        }
        assert_eq!(vs.current(LineAddr(1)), 10);
    }

    #[test]
    fn lines_are_independent() {
        let mut vs = VersionStore::new();
        vs.bump(LineAddr(1));
        vs.bump(LineAddr(1));
        vs.bump(LineAddr(2));
        assert_eq!(vs.current(LineAddr(1)), 2);
        assert_eq!(vs.current(LineAddr(2)), 1);
        assert_eq!(vs.current(LineAddr(3)), 0);
        assert_eq!(vs.stores_committed(), 3);
        assert_eq!(vs.lines_written(), 2);
    }
}
