//! A set-associative cache with LRU replacement and per-line metadata.
//!
//! Used for both the software-managed L1s and the GPM L2 slices. The
//! paper's evaluated configuration is write-through everywhere
//! (Section VI), so evictions of clean lines are silent and the cache
//! never needs a writeback path.

use hmg_sim::SimError;

use crate::addr::LineAddr;
use crate::fastdiv::SetSplit;

/// Shape of one cache: total capacity in lines and associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total number of cache lines.
    pub lines: u32,
    /// Ways per set.
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a positive multiple of `ways`. Set counts
    /// need not be powers of two; indexing uses modulo, which lets the
    /// Table II capacities (e.g. 3 MB slices, 16 ways, 1536 sets) be
    /// expressed exactly.
    pub fn new(lines: u32, ways: u32) -> Self {
        // audit:allow(panic-path): documented panicking wrapper over try_new.
        Self::try_new(lines, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`CacheConfig::new`]: returns a typed
    /// [`SimError`] instead of panicking on a bad geometry, for callers
    /// that validate user-supplied configurations.
    pub fn try_new(lines: u32, ways: u32) -> Result<Self, SimError> {
        if ways == 0 || lines == 0 {
            return Err(SimError::config(format!(
                "cache dimensions must be positive (lines={lines}, ways={ways})"
            )));
        }
        if !lines.is_multiple_of(ways) {
            return Err(SimError::config(format!(
                "lines must divide evenly into ways (lines={lines}, ways={ways})"
            )));
        }
        Ok(CacheConfig { lines, ways })
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u32 {
        self.lines / self.ways
    }
}

/// A set-associative, LRU-replacement cache mapping [`LineAddr`]s to
/// per-line metadata `M`.
///
/// The cache stores no data payloads — the simulator tracks line
/// *versions* (for the coherence checker) and timing, not values.
///
/// Storage is struct-of-arrays: tags, recency ticks, and metadata live
/// in three flat slabs indexed `set * ways + way`, with a per-set
/// occupancy count. A probe scans only the contiguous tag lane of one
/// set (one cache line for typical associativities), and the bulk
/// invalidation that software coherence performs at every acquire is a
/// clear of the occupancy array rather than a walk over per-set heap
/// allocations. `M: Default` fills the slabs' never-yet-occupied slots.
///
/// Within a set, slots behave exactly like a `Vec` of ways: inserts
/// append, [`Cache::invalidate`] swap-removes, and
/// [`Cache::invalidate_where`] compacts in order — so iteration order
/// (which fault injection and the digest oracle observe) is a pure
/// function of the operation history, unchanged from the boxed-`Vec`
/// representation this replaced.
///
/// # Example
///
/// ```
/// use hmg_mem::{Cache, CacheConfig};
/// use hmg_mem::addr::LineAddr;
///
/// let mut c: Cache<u64> = Cache::new(CacheConfig::new(8, 2));
/// assert!(c.insert(LineAddr(1), 7).is_none());
/// assert_eq!(c.get(LineAddr(1)), Some(&7));
/// c.invalidate(LineAddr(1));
/// assert_eq!(c.get(LineAddr(1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Cache<M> {
    config: CacheConfig,
    /// Tag lane, indexed `set * ways + way`; only `lens[set]` slots of
    /// each set's span are live.
    tags: Box<[u64]>,
    /// LRU recency tick per slot, parallel to `tags`.
    last_use: Box<[u64]>,
    /// Per-line metadata per slot, parallel to `tags`.
    metas: Box<[M]>,
    /// Occupied ways per set.
    lens: Box<[u32]>,
    /// Strength-reduced `(tag, set)` splitter for the set count.
    split: SetSplit,
    tick: u64,
    insertions: u64,
    evictions: u64,
}

impl<M: Default> Cache<M> {
    /// Creates an empty cache of the given shape.
    pub fn new(config: CacheConfig) -> Self {
        let cap = config.lines as usize;
        Cache {
            config,
            tags: vec![0; cap].into_boxed_slice(),
            last_use: vec![0; cap].into_boxed_slice(),
            metas: (0..cap).map(|_| M::default()).collect(),
            lens: vec![0; config.sets() as usize].into_boxed_slice(),
            split: SetSplit::new(config.sets()),
            tick: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Splits a line address into `(tag, set index)` — one
    /// strength-reduced divide instead of a hardware div + mod.
    #[inline]
    fn locate(&self, line: LineAddr) -> (u64, usize) {
        let (tag, set) = self.split.split(line.0);
        (tag, set as usize)
    }

    /// Position of `line`'s slot within its set span, if resident.
    #[inline]
    fn find(&self, base: usize, len: usize, tag: u64) -> Option<usize> {
        self.tags[base..base + len].iter().position(|&t| t == tag)
    }

    /// Looks up `line` without updating recency. Returns the metadata if
    /// present.
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        let (tag, idx) = self.locate(line);
        let base = idx * self.config.ways as usize;
        let len = self.lens[idx] as usize;
        let pos = self.find(base, len, tag)?;
        Some(&self.metas[base + pos])
    }

    /// Looks up `line`, updating LRU recency on a hit.
    pub fn get(&mut self, line: LineAddr) -> Option<&M> {
        self.tick += 1;
        let (tag, idx) = self.locate(line);
        let base = idx * self.config.ways as usize;
        let len = self.lens[idx] as usize;
        let pos = self.find(base, len, tag)?;
        self.last_use[base + pos] = self.tick;
        Some(&self.metas[base + pos])
    }

    /// Mutable lookup, updating LRU recency on a hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        self.tick += 1;
        let (tag, idx) = self.locate(line);
        let base = idx * self.config.ways as usize;
        let len = self.lens[idx] as usize;
        let pos = self.find(base, len, tag)?;
        self.last_use[base + pos] = self.tick;
        Some(&mut self.metas[base + pos])
    }

    /// Inserts (or overwrites) `line` with `meta`. Returns the evicted
    /// line and its metadata if an LRU victim had to be displaced.
    pub fn insert(&mut self, line: LineAddr, meta: M) -> Option<(LineAddr, M)> {
        self.tick += 1;
        let tick = self.tick;
        let sets_count = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        let (tag, idx) = self.locate(line);
        let base = idx * ways;
        let len = self.lens[idx] as usize;
        // One pass finds both a tag hit and (if none) the LRU victim.
        // Recency ticks are globally unique, so the first minimum is
        // unambiguous and matches the previous representation exactly.
        let mut victim_i = 0;
        let mut victim_use = u64::MAX;
        for i in 0..len {
            if self.tags[base + i] == tag {
                self.metas[base + i] = meta;
                self.last_use[base + i] = tick;
                return None;
            }
            if self.last_use[base + i] < victim_use {
                victim_use = self.last_use[base + i];
                victim_i = i;
            }
        }
        self.insertions += 1;
        if len < ways {
            self.tags[base + len] = tag;
            self.last_use[base + len] = tick;
            self.metas[base + len] = meta;
            self.lens[idx] += 1;
            return None;
        }
        // Evict the LRU way found above (the set is full here, so the
        // scan visited at least one way).
        let victim_tag = self.tags[base + victim_i];
        self.tags[base + victim_i] = tag;
        self.last_use[base + victim_i] = tick;
        let victim_meta = std::mem::replace(&mut self.metas[base + victim_i], meta);
        self.evictions += 1;
        let victim_line = LineAddr(victim_tag * sets_count + idx as u64);
        Some((victim_line, victim_meta))
    }

    /// Removes `line` if present, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M> {
        let (tag, idx) = self.locate(line);
        let base = idx * self.config.ways as usize;
        let len = self.lens[idx] as usize;
        let pos = self.find(base, len, tag)?;
        // Swap-remove: the last live slot fills the hole, matching the
        // `Vec::swap_remove` order the digest oracle was frozen on.
        let last = len - 1;
        self.tags[base + pos] = self.tags[base + last];
        self.last_use[base + pos] = self.last_use[base + last];
        self.metas.swap(base + pos, base + last);
        self.lens[idx] = last as u32;
        Some(std::mem::take(&mut self.metas[base + last]))
    }

    /// Removes every line — the bulk invalidation software coherence
    /// performs at acquire operations. Returns the number removed.
    ///
    /// With flat storage this is a sum-and-clear over the per-set
    /// occupancy counts; no per-set allocation is visited. Stale
    /// metadata stays in the slab until its slot is refilled, which is
    /// unobservable through the API.
    pub fn invalidate_all(&mut self) -> u64 {
        let n = self.lens.iter().map(|&l| u64::from(l)).sum();
        self.lens.fill(0);
        n
    }

    /// Removes every line for which `pred` holds; returns how many.
    pub fn invalidate_where<F: FnMut(LineAddr, &M) -> bool>(&mut self, mut pred: F) -> u64 {
        let sets_count = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        let mut n = 0;
        for idx in 0..self.lens.len() {
            let base = idx * ways;
            let len = self.lens[idx] as usize;
            // In-order compaction — identical survivor order to
            // `Vec::retain`.
            let mut keep = 0;
            for i in 0..len {
                let line = LineAddr(self.tags[base + i] * sets_count + idx as u64);
                if pred(line, &self.metas[base + i]) {
                    n += 1;
                } else {
                    if keep != i {
                        self.tags[base + keep] = self.tags[base + i];
                        self.last_use[base + keep] = self.last_use[base + i];
                        self.metas.swap(base + keep, base + i);
                    }
                    keep += 1;
                }
            }
            self.lens[idx] = keep as u32;
        }
        n
    }

    /// Whether `line` is currently cached.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines inserted so far (fills).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Capacity/conflict evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The `n`th resident `(line, meta)` pair in iteration order, or
    /// `None` when fewer than `n + 1` lines are resident. The order is
    /// unspecified but deterministic for a given insertion history —
    /// fault injection uses this to pick a victim line reproducibly.
    pub fn nth_resident(&self, n: usize) -> Option<(LineAddr, &M)> {
        self.iter().nth(n)
    }

    /// Iterates over resident `(line, meta)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> {
        let sets_count = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        self.lens.iter().enumerate().flat_map(move |(idx, &len)| {
            let base = idx * ways;
            (base..base + len as usize).map(move |slot| {
                (
                    LineAddr(self.tags[slot] * sets_count + idx as u64),
                    &self.metas[slot],
                )
            })
        })
    }
}

// Snapshots serialize only the live slots (`lens[set]` per set): dead
// slab slots hold stale metadata that is unobservable through the API,
// so the restored cache fills them with `M::default()` instead.
impl<M: Default + hmg_sim::SnapshotWrite> hmg_sim::SnapshotWrite for Cache<M> {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u32(self.config.lines);
        w.put_u32(self.config.ways);
        w.put_u64(self.tick);
        w.put_u64(self.insertions);
        w.put_u64(self.evictions);
        let ways = self.config.ways as usize;
        for (idx, &len) in self.lens.iter().enumerate() {
            w.put_u32(len);
            let base = idx * ways;
            for slot in base..base + len as usize {
                w.put_u64(self.tags[slot]);
                w.put_u64(self.last_use[slot]);
                self.metas[slot].write_snap(w);
            }
        }
    }
}

impl<M: Default + hmg_sim::SnapshotRead> hmg_sim::SnapshotRead for Cache<M> {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let lines = r.get_u32()?;
        let ways = r.get_u32()?;
        let config = CacheConfig::try_new(lines, ways)
            .map_err(|e| hmg_sim::SnapError::Malformed(e.to_string()))?;
        let mut c = Cache::new(config);
        c.tick = r.get_u64()?;
        c.insertions = r.get_u64()?;
        c.evictions = r.get_u64()?;
        let ways = config.ways as usize;
        for idx in 0..config.sets() as usize {
            let len = r.get_u32()?;
            if len as usize > ways {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "cache set {idx} claims {len} live ways of {ways}"
                )));
            }
            let base = idx * ways;
            for slot in base..base + len as usize {
                c.tags[slot] = r.get_u64()?;
                c.last_use[slot] = r.get_u64()?;
                c.metas[slot] = M::read_snap(r)?;
            }
            c.lens[idx] = len;
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmg_sim::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};

    fn cache(lines: u32, ways: u32) -> Cache<u32> {
        Cache::new(CacheConfig::new(lines, ways))
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache(16, 4);
        assert!(c.insert(LineAddr(5), 99).is_none());
        assert_eq!(c.get(LineAddr(5)), Some(&99));
        assert!(c.contains(LineAddr(5)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn miss_on_absent_line() {
        let mut c = cache(16, 4);
        assert_eq!(c.get(LineAddr(3)), None);
        assert_eq!(c.peek(LineAddr(3)), None);
    }

    #[test]
    fn overwrite_updates_meta_without_eviction() {
        let mut c = cache(16, 4);
        c.insert(LineAddr(5), 1);
        assert!(c.insert(LineAddr(5), 2).is_none());
        assert_eq!(c.peek(LineAddr(5)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        // 1 set, 2 ways: lines 0, 4, 8 all map to set 0 (4 sets? no: 2
        // lines / 2 ways = 1 set). Use 2-line, 2-way cache.
        let mut c = cache(2, 2);
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(1), 11);
        c.get(LineAddr(0)); // 1 becomes LRU
        let evicted = c.insert(LineAddr(2), 12).expect("must evict");
        assert_eq!(evicted, (LineAddr(1), 11));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
    }

    #[test]
    fn evicted_line_address_is_reconstructed_correctly() {
        let mut c = cache(8, 2); // 4 sets
                                 // Lines 3, 7, 11 map to set 3; fill two ways then force eviction.
        c.insert(LineAddr(3), 1);
        c.insert(LineAddr(7), 2);
        let (victim, meta) = c.insert(LineAddr(11), 3).expect("eviction");
        assert_eq!(victim, LineAddr(3));
        assert_eq!(meta, 1);
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = cache(16, 4);
        c.insert(LineAddr(6), 42);
        assert_eq!(c.invalidate(LineAddr(6)), Some(42));
        assert_eq!(c.invalidate(LineAddr(6)), None);
        assert!(!c.contains(LineAddr(6)));
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut c = cache(16, 4);
        for i in 0..10 {
            c.insert(LineAddr(i), i as u32);
        }
        assert_eq!(c.invalidate_all(), 10);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_where_is_selective() {
        let mut c = cache(16, 4);
        for i in 0..8 {
            c.insert(LineAddr(i), i as u32);
        }
        let n = c.invalidate_where(|_, &m| m % 2 == 0);
        assert_eq!(n, 4);
        assert_eq!(c.len(), 4);
        assert!(c.contains(LineAddr(1)));
        assert!(!c.contains(LineAddr(2)));
    }

    #[test]
    fn iter_reports_correct_line_addresses() {
        let mut c = cache(8, 2);
        let lines = [LineAddr(0), LineAddr(5), LineAddr(10)];
        for (i, &l) in lines.iter().enumerate() {
            c.insert(l, i as u32);
        }
        let mut seen: Vec<LineAddr> = c.iter().map(|(l, _)| l).collect();
        seen.sort();
        assert_eq!(seen, vec![LineAddr(0), LineAddr(5), LineAddr(10)]);
    }

    #[test]
    fn nth_resident_is_deterministic_and_bounded() {
        let mut c = cache(8, 2);
        for i in 0..3 {
            c.insert(LineAddr(i), i as u32);
        }
        let all: Vec<_> = (0..3).map(|n| c.nth_resident(n).map(|(l, _)| l)).collect();
        let again: Vec<_> = (0..3).map(|n| c.nth_resident(n).map(|(l, _)| l)).collect();
        assert_eq!(all, again, "same history -> same order");
        assert!(all.iter().all(Option::is_some));
        assert_eq!(c.nth_resident(3), None, "past the end");
    }

    #[test]
    fn fill_and_eviction_counters() {
        let mut c = cache(2, 1); // 2 sets, direct-mapped
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(2), 0); // same set as 0, evicts
        assert_eq!(c.insertions(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn non_power_of_two_set_count_works() {
        // 12 lines / 4 ways = 3 sets; lines 0, 3, 6, 9 share set 0.
        let mut c = cache(12, 4);
        for i in 0..5 {
            c.insert(LineAddr(i * 3), i as u32);
        }
        assert_eq!(c.evictions(), 1);
        for i in 1..5 {
            assert!(c.contains(LineAddr(i * 3)), "line {} resident", i * 3);
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_lines_rejected() {
        CacheConfig::new(10, 4);
    }

    #[test]
    fn snapshot_round_trip_preserves_order_and_lru() {
        let mut c = cache(8, 2);
        for i in 0..6u64 {
            c.insert(LineAddr(i), i as u32);
        }
        c.get(LineAddr(1)); // perturb recency
        c.invalidate(LineAddr(5)); // perturb in-set order via swap-remove
        let mut w = SnapWriter::new();
        c.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = Cache::<u32>::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            back.iter().collect::<Vec<_>>(),
            "iteration order survives"
        );
        assert_eq!(back.insertions(), c.insertions());
        assert_eq!(back.evictions(), c.evictions());
        // Same future behavior: the next conflict evicts the same victim.
        let mut c2 = c.clone();
        assert_eq!(c2.insert(LineAddr(9), 99), back.insert(LineAddr(9), 99));
    }

    #[test]
    fn snapshot_refuses_impossible_geometry_and_overfull_sets() {
        let mut w = SnapWriter::new();
        w.put_u32(10); // lines not a multiple of ways
        w.put_u32(4);
        assert!(matches!(
            Cache::<u32>::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(hmg_sim::SnapError::Malformed(_))
        ));

        let mut w = SnapWriter::new();
        c_overfull(&mut w);
        assert!(matches!(
            Cache::<u32>::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(hmg_sim::SnapError::Malformed(_))
        ));
    }

    fn c_overfull(w: &mut SnapWriter) {
        w.put_u32(4); // 2 sets x 2 ways
        w.put_u32(2);
        w.put_u64(0); // tick
        w.put_u64(0); // insertions
        w.put_u64(0); // evictions
        w.put_u32(3); // set 0 claims 3 live ways of 2
    }
}
