//! A bandwidth/latency-modeled local DRAM partition.
//!
//! Each GPM owns one partition of its GPU's DRAM (Table II: 1 TB/s and
//! 32 GB per GPU, so 250 GB/s per GPM in the 4-GPM configuration).

use hmg_interconnect::Link;
use hmg_sim::Cycle;

/// One GPM's DRAM partition: a single port with finite bandwidth and a
/// fixed access latency.
///
/// # Example
///
/// ```
/// use hmg_mem::Dram;
/// use hmg_sim::Cycle;
///
/// let mut d = Dram::new(192.0, Cycle(300)); // ~250 GB/s at 1.3 GHz
/// let done = d.access(Cycle(0), 128);
/// assert!(done >= Cycle(300));
/// assert_eq!(d.bytes_transferred(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    port: Link,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// Creates a partition moving `bytes_per_cycle` with `latency` cycles
    /// of access time.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        Dram {
            port: Link::new(bytes_per_cycle, latency),
            reads: 0,
            writes: 0,
        }
    }

    /// Performs a read of `bytes`; returns the completion time.
    pub fn access(&mut self, now: Cycle, bytes: u32) -> Cycle {
        self.reads += 1;
        self.port.send(now, bytes)
    }

    /// Performs a write of `bytes`; returns the completion time.
    pub fn write(&mut self, now: Cycle, bytes: u32) -> Cycle {
        self.writes += 1;
        self.port.send(now, bytes)
    }

    /// Total bytes moved in either direction.
    pub fn bytes_transferred(&self) -> u64 {
        self.port.bytes_sent()
    }

    /// Number of read accesses.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write accesses.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Port utilization over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.port.utilization(elapsed)
    }
}

impl hmg_sim::SnapshotWrite for Dram {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.port.write_snap(w);
        w.put_u64(self.reads);
        w.put_u64(self.writes);
    }
}

impl hmg_sim::SnapshotRead for Dram {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(Dram {
            port: Link::read_snap(r)?,
            reads: r.get_u64()?,
            writes: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_includes_latency_and_serialization() {
        let mut d = Dram::new(64.0, Cycle(200));
        // 128 B / 64 Bpc = 2 cycles + 200 latency.
        assert_eq!(d.access(Cycle(0), 128), Cycle(202));
    }

    #[test]
    fn bandwidth_throttles_bursts() {
        let mut d = Dram::new(1.0, Cycle(0));
        d.access(Cycle(0), 100);
        let done = d.access(Cycle(0), 100);
        assert_eq!(done, Cycle(200));
    }

    #[test]
    fn read_write_counters() {
        let mut d = Dram::new(64.0, Cycle(1));
        d.access(Cycle(0), 128);
        d.write(Cycle(0), 32);
        d.write(Cycle(0), 32);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.bytes_transferred(), 192);
    }

    #[test]
    fn snapshot_round_trip_preserves_port_backlog() {
        use hmg_sim::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let mut d = Dram::new(3.0, Cycle(200));
        d.access(Cycle(0), 1); // fractional occupancy: 1/3 cycle
        d.write(Cycle(0), 1);
        let mut w = SnapWriter::new();
        d.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = Dram::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.reads(), 1);
        assert_eq!(back.writes(), 1);
        assert_eq!(back.bytes_transferred(), 2);
        // The fractional next-free position must survive exactly: the
        // next access completes at the same cycle on both.
        assert_eq!(d.access(Cycle(0), 1), back.access(Cycle(0), 1));
    }
}
