//! Strength-reduced division for set indexing.
//!
//! Table II geometries give non-power-of-two set counts (e.g. 1536
//! sets per 3 MB L2 slice), so every cache and directory probe splits
//! a line address into `(tag, set) = (addr / sets, addr % sets)`. A
//! hardware 64-bit divide costs tens of cycles and sits on the hot
//! path of every probe; this module replaces it with two multiplies.
//!
//! The fast path is Lemire's exact divide/remainder-by-multiplication
//! ("Faster remainder by direct computation", Lemire–Kaser–Kurz,
//! 2019): for a divisor `d` in `[2, 2^32)` and numerator `n < 2^32`,
//! with `magic = floor(2^64 / d) + 1`,
//!
//! * `n / d == (magic * n) >> 64`, and
//! * `n % d == ((magic.wrapping_mul(n) as u128) * d) >> 64`
//!
//! hold exactly. Line addresses above `2^32` (possible in principle,
//! never seen in the shipped traces) fall back to the hardware divide,
//! so the split is exact for every `u64` — the unit tests sweep the
//! real Table II set counts and the boundary region to prove it.

/// Precomputed divisor state for splitting a line address into
/// `(tag, set)` without a hardware divide on the common path.
///
/// # Example
///
/// ```
/// use hmg_mem::fastdiv::SetSplit;
///
/// let s = SetSplit::new(1536); // a 3 MB, 16-way L2 slice
/// assert_eq!(s.split(100_000), (100_000 / 1536, (100_000 % 1536) as u32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetSplit {
    sets: u32,
    magic: u64,
}

impl SetSplit {
    /// Prepares a splitter for `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: u32) -> Self {
        assert!(sets > 0, "set count must be positive");
        // `floor(2^64 / 1) + 1` overflows u64; `split` special-cases
        // sets == 1 before ever touching the magic, so 0 is fine.
        let magic = if sets == 1 {
            0
        } else {
            (u64::MAX / u64::from(sets)) + 1
        };
        SetSplit { sets, magic }
    }

    /// The divisor this splitter was built for.
    #[inline]
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Exact `(n / sets, n % sets)` for any `n`.
    #[inline]
    pub fn split(&self, n: u64) -> (u64, u32) {
        if self.sets == 1 {
            return (n, 0);
        }
        if n < (1 << 32) {
            let q = ((u128::from(self.magic) * u128::from(n)) >> 64) as u64;
            let frac = self.magic.wrapping_mul(n);
            let r = ((u128::from(frac) * u128::from(self.sets)) >> 64) as u32;
            (q, r)
        } else {
            let d = u64::from(self.sets);
            (n / d, (n % d) as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The set counts every shipped geometry actually uses (Table II
    /// L1/L2/directory shapes, the small-test shapes, and the unit-test
    /// corner shapes), plus awkward divisors.
    const REAL_SET_COUNTS: &[u32] = &[1, 2, 3, 4, 8, 12, 32, 64, 128, 256, 750, 1536, 4095];

    #[test]
    fn matches_hardware_division_on_dense_sweep() {
        for &d in REAL_SET_COUNTS {
            let s = SetSplit::new(d);
            for n in 0..20_000u64 {
                assert_eq!(
                    s.split(n),
                    (n / u64::from(d), (n % u64::from(d)) as u32),
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn matches_hardware_division_near_the_fast_path_boundary() {
        for &d in REAL_SET_COUNTS {
            let s = SetSplit::new(d);
            for delta in 0..4096u64 {
                for n in [(1u64 << 32) - 1 - delta, (1u64 << 32) + delta] {
                    assert_eq!(
                        s.split(n),
                        (n / u64::from(d), (n % u64::from(d)) as u32),
                        "n={n} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_hardware_division_on_seeded_random_u64s() {
        // xorshift64* over the whole u64 range exercises the fallback.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let n = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
            for &d in REAL_SET_COUNTS {
                let s = SetSplit::new(d);
                assert_eq!(
                    s.split(n),
                    (n / u64::from(d), (n % u64::from(d)) as u32),
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sets_rejected() {
        SetSplit::new(0);
    }
}
