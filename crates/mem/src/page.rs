//! NUMA page placement and home-node resolution.
//!
//! The *system home* GPM of every address is decided at page granularity
//! (2 MB pages, Table II) by the placement policy — first-touch by
//! default, as the paper's simulator inherits from MCM-GPU and NUMA-GPU
//! work [5, 13]. Under HMG every other GPU additionally designates a
//! *GPU home* GPM per directory block via a hash (Section V-A); within
//! the owning GPU the GPU home coincides with the system home (Fig. 6).

use hmg_interconnect::{GpmId, GpuId, Topology};
use hmg_sim::collect::{FlatMap, FlatSet};
use hmg_sim::rng::hash64;

use crate::addr::{BlockAddr, PageId};

/// Salt decorrelating the re-homing hash from the placement hash, so a
/// page that interleaved placement sent to a now-dead GPM does not
/// systematically land on the same survivor.
const REHOME_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// Placement policy for the system home of each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePlacement {
    /// The page is homed at the GPM that first touches it — the paper's
    /// default (maximizes locality under contiguous CTA scheduling).
    #[default]
    FirstTouch,
    /// The page is homed by hashing its page number across all GPMs —
    /// the "static distribution" alternative (used as an ablation).
    Interleaved,
}

/// Tracks page-to-home-GPM assignments and answers home-node queries.
///
/// # Example
///
/// ```
/// use hmg_mem::{PageMap, PagePlacement};
/// use hmg_mem::addr::PageId;
/// use hmg_interconnect::{Topology, GpmId};
///
/// let topo = Topology::new(2, 2);
/// let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
/// let home = pm.home_of(PageId(5), GpmId(3));
/// assert_eq!(home, GpmId(3)); // first touch wins
/// assert_eq!(pm.home_of(PageId(5), GpmId(0)), GpmId(3)); // sticky
/// ```
#[derive(Debug)]
pub struct PageMap {
    topo: Topology,
    placement: PagePlacement,
    /// Strength-reduced modulo by `gpms_per_gpu` for GPU-home hashing.
    gpu_split: crate::fastdiv::SetSplit,
    homes: FlatMap<PageId, GpmId>,
    /// Bit *i* set = global GPM *i* is permanently offline: it can no
    /// longer home pages, and pages it homed have been re-hashed onto
    /// the survivors.
    offline: u64,
    /// Pages whose home died and were re-homed — these serve in
    /// degraded no-peer-caching mode (their DRAM partition is gone).
    rehomed: FlatSet<PageId>,
}

impl PageMap {
    /// Creates an empty map for `topo` under `placement`.
    pub fn new(topo: Topology, placement: PagePlacement) -> Self {
        PageMap {
            topo,
            placement,
            gpu_split: crate::fastdiv::SetSplit::new(u32::from(topo.gpms_per_gpu())),
            homes: FlatMap::new(),
            offline: 0,
            rehomed: FlatSet::new(),
        }
    }

    /// The placement policy in force.
    pub fn placement(&self) -> PagePlacement {
        self.placement
    }

    /// Whether `gpm` has been taken permanently offline.
    pub fn is_offline(&self, gpm: GpmId) -> bool {
        self.offline & (1u64 << gpm.index()) != 0
    }

    /// Deterministic re-home of `page` over the surviving GPMs: a
    /// salted re-hash over the alive list in index order, so every node
    /// computes the same answer with no coordination.
    ///
    /// # Panics
    ///
    /// Panics if every GPM is offline.
    fn rehome_target(&self, page: PageId) -> GpmId {
        let alive: Vec<GpmId> = self
            .topo
            .all_gpms()
            .filter(|&g| !self.is_offline(g))
            .collect();
        assert!(!alive.is_empty(), "no surviving GPM to re-home onto");
        alive[(hash64(page.0 ^ REHOME_SALT) % alive.len() as u64) as usize]
    }

    /// The interleaved home of `page`: the placement hash, re-hashed
    /// over the survivors when it lands on a dead GPM.
    fn interleaved_home(&self, page: PageId) -> GpmId {
        let n = self.topo.num_gpms() as u64;
        let base = GpmId((hash64(page.0) % n) as u16);
        if self.is_offline(base) {
            self.rehome_target(page)
        } else {
            base
        }
    }

    /// Returns the system home GPM of `page`, assigning it on first use
    /// according to the placement policy (`toucher` is the GPM issuing
    /// the access). Never returns an offline GPM: first touches come
    /// from live GPMs, assigned homes are re-hashed by
    /// [`PageMap::take_offline`], and the interleaved hash skips the
    /// dead.
    pub fn home_of(&mut self, page: PageId, toucher: GpmId) -> GpmId {
        match self.placement {
            PagePlacement::FirstTouch => *self.homes.or_insert(page, toucher),
            PagePlacement::Interleaved => self.interleaved_home(page),
        }
    }

    /// The home of `page` if already assigned (always `Some` under
    /// interleaved placement).
    pub fn peek_home(&self, page: PageId) -> Option<GpmId> {
        match self.placement {
            PagePlacement::FirstTouch => self.homes.get(&page).copied(),
            PagePlacement::Interleaved => Some(self.interleaved_home(page)),
        }
    }

    /// Number of pages assigned so far (first-touch only).
    pub fn assigned_pages(&self) -> usize {
        self.homes.len()
    }

    /// Takes GPMs permanently offline and re-homes every assigned page
    /// they owned: a deterministic salted re-hash over the surviving
    /// GPMs in index order. Returns the re-homed pages, sorted — these
    /// are the pages whose DRAM partition died, and they serve in
    /// degraded no-peer-caching mode from now on.
    ///
    /// Under interleaved placement assignment is implicit, so nothing
    /// is eagerly moved (and the returned list is empty): the placement
    /// hash itself skips dead GPMs, and [`PageMap::is_rehomed`] answers
    /// per query.
    pub fn take_offline(&mut self, dead: &[GpmId]) -> Vec<PageId> {
        for &g in dead {
            assert!(g.0 < self.topo.num_gpms(), "{g} out of range");
            self.offline |= 1u64 << g.index();
        }
        let mut moved: Vec<PageId> = self
            .homes
            .iter()
            .filter(|(_, &home)| self.is_offline(home))
            .map(|(&page, _)| page)
            .collect();
        moved.sort_unstable();
        for &page in &moved {
            let target = self.rehome_target(page);
            self.homes.insert(page, target);
            self.rehomed.insert(page);
        }
        moved
    }

    /// Whether `page`'s original home died: its data now lives on a
    /// survivor and is served in degraded no-peer-caching mode.
    pub fn is_rehomed(&self, page: PageId) -> bool {
        if self.offline == 0 {
            return false;
        }
        match self.placement {
            PagePlacement::FirstTouch => self.rehomed.contains(&page),
            PagePlacement::Interleaved => {
                let n = self.topo.num_gpms() as u64;
                self.is_offline(GpmId((hash64(page.0) % n) as u16))
            }
        }
    }

    /// HMG's *GPU home* for directory block `block` within `gpu`, given
    /// the block's system home `sys_home`. Within the owning GPU the GPU
    /// home is the system home itself; elsewhere it is a hash across the
    /// GPU's modules — skipping dead modules by re-hashing over the
    /// GPU's survivors (falling back to `sys_home` if the whole GPU is
    /// dead, in which case nothing routes through it anyway).
    pub fn gpu_home(&self, gpu: GpuId, block: BlockAddr, sys_home: GpmId) -> GpmId {
        if self.topo.gpu_of(sys_home) == gpu {
            return sys_home;
        }
        let local = self.gpu_split.split(hash64(block.0)).1 as u16;
        let base = self.topo.gpm(gpu, local);
        if !self.is_offline(base) {
            return base;
        }
        let alive: Vec<GpmId> = self
            .topo
            .gpms_of(gpu)
            .filter(|&g| !self.is_offline(g))
            .collect();
        if alive.is_empty() {
            return sys_home;
        }
        alive[(hash64(block.0 ^ REHOME_SALT) % alive.len() as u64) as usize]
    }
}

impl hmg_sim::SnapshotWrite for PageMap {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.topo.write_snap(w);
        w.put_u8(match self.placement {
            PagePlacement::FirstTouch => 0,
            PagePlacement::Interleaved => 1,
        });
        self.homes.write_snap(w);
        w.put_u64(self.offline);
        self.rehomed.write_snap(w);
    }
}

impl hmg_sim::SnapshotRead for PageMap {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let topo = Topology::read_snap(r)?;
        let placement = match r.get_u8()? {
            0 => PagePlacement::FirstTouch,
            1 => PagePlacement::Interleaved,
            b => {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "page placement tag {b}"
                )))
            }
        };
        let homes: FlatMap<PageId, GpmId> = FlatMap::read_snap(r)?;
        let offline = r.get_u64()?;
        let rehomed = FlatSet::read_snap(r)?;
        if offline >> topo.num_gpms().min(63) != 0 {
            return Err(hmg_sim::SnapError::Malformed(
                "offline-GPM mask exceeds topology".into(),
            ));
        }
        for (_, &home) in homes.iter() {
            if home.0 >= topo.num_gpms() {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "page home {home} out of range"
                )));
            }
        }
        Ok(PageMap {
            topo,
            placement,
            gpu_split: crate::fastdiv::SetSplit::new(u32::from(topo.gpms_per_gpu())),
            homes,
            offline,
            rehomed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_sticky() {
        let topo = Topology::new(4, 4);
        let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
        assert_eq!(pm.home_of(PageId(1), GpmId(9)), GpmId(9));
        assert_eq!(pm.home_of(PageId(1), GpmId(2)), GpmId(9));
        assert_eq!(pm.assigned_pages(), 1);
        assert_eq!(pm.peek_home(PageId(1)), Some(GpmId(9)));
        assert_eq!(pm.peek_home(PageId(2)), None);
    }

    #[test]
    fn interleaved_ignores_toucher_and_spreads() {
        let topo = Topology::new(4, 4);
        let mut pm = PageMap::new(topo, PagePlacement::Interleaved);
        let mut seen = std::collections::HashSet::new();
        for p in 0..256u64 {
            let h = pm.home_of(PageId(p), GpmId(0));
            assert_eq!(pm.home_of(PageId(p), GpmId(5)), h, "deterministic");
            seen.insert(h);
        }
        assert!(seen.len() >= 12, "interleaving should hit most GPMs");
    }

    #[test]
    fn gpu_home_in_owning_gpu_is_system_home() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let sys_home = GpmId(6); // GPU1
        let gh = pm.gpu_home(GpuId(1), BlockAddr(77), sys_home);
        assert_eq!(gh, sys_home);
    }

    #[test]
    fn gpu_home_elsewhere_is_within_that_gpu_and_deterministic() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let sys_home = GpmId(6); // GPU1
        for b in 0..100u64 {
            let gh = pm.gpu_home(GpuId(3), BlockAddr(b), sys_home);
            assert_eq!(topo.gpu_of(gh), GpuId(3));
            assert_eq!(pm.gpu_home(GpuId(3), BlockAddr(b), sys_home), gh);
        }
    }

    #[test]
    fn take_offline_rehomes_deterministically_onto_survivors() {
        let topo = Topology::new(2, 2);
        let mut a = PageMap::new(topo, PagePlacement::FirstTouch);
        let mut b = PageMap::new(topo, PagePlacement::FirstTouch);
        for pm in [&mut a, &mut b] {
            for p in 0..32u64 {
                pm.home_of(PageId(p), GpmId((p % 4) as u16));
            }
        }
        let moved_a = a.take_offline(&[GpmId(2), GpmId(3)]);
        let moved_b = b.take_offline(&[GpmId(2), GpmId(3)]);
        assert_eq!(moved_a, moved_b, "re-home set is deterministic");
        assert_eq!(moved_a.len(), 16, "pages homed at GPM2/3");
        for &p in &moved_a {
            let home = a.peek_home(p).unwrap();
            assert!(home == GpmId(0) || home == GpmId(1), "survivor only");
            assert_eq!(b.peek_home(p), Some(home), "same target everywhere");
            assert!(a.is_rehomed(p));
        }
        // Surviving pages keep their home and are not degraded.
        for p in 0..32u64 {
            if !moved_a.contains(&PageId(p)) {
                assert!(!a.is_rehomed(PageId(p)));
                assert_eq!(a.peek_home(PageId(p)), Some(GpmId((p % 4) as u16)));
            }
        }
        assert!(a.is_offline(GpmId(2)) && !a.is_offline(GpmId(1)));
    }

    #[test]
    fn interleaved_homes_skip_dead_gpms_lazily() {
        let topo = Topology::new(2, 2);
        let mut pm = PageMap::new(topo, PagePlacement::Interleaved);
        let moved = pm.take_offline(&[GpmId(0)]);
        assert!(moved.is_empty(), "interleaved re-homes lazily");
        let mut rehomed = 0;
        for p in 0..64u64 {
            let h = pm.home_of(PageId(p), GpmId(1));
            assert_ne!(h, GpmId(0), "dead GPM must not home pages");
            assert_eq!(pm.peek_home(PageId(p)), Some(h));
            if pm.is_rehomed(PageId(p)) {
                rehomed += 1;
            }
        }
        assert!(rehomed > 0, "some pages hashed to the dead GPM");
    }

    #[test]
    fn gpu_home_avoids_dead_modules() {
        let topo = Topology::new(2, 2);
        let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
        pm.take_offline(&[GpmId(2)]); // GPU1 loses its first module
        let sys_home = GpmId(0); // GPU0
        let mut seen = std::collections::HashSet::new();
        for b in 0..64u64 {
            let gh = pm.gpu_home(GpuId(1), BlockAddr(b), sys_home);
            assert_ne!(gh, GpmId(2), "dead module must not be a GPU home");
            assert_eq!(topo.gpu_of(gh), GpuId(1));
            seen.insert(gh);
        }
        assert_eq!(seen, std::collections::HashSet::from([GpmId(3)]));
        // A fully dead GPU degenerates to the system home (nothing
        // routes through it).
        pm.take_offline(&[GpmId(3)]);
        assert_eq!(pm.gpu_home(GpuId(1), BlockAddr(7), sys_home), sys_home);
    }

    #[test]
    fn snapshot_round_trip_preserves_homes_and_degradation() {
        use hmg_sim::{SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let topo = Topology::new(2, 2);
        let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
        for p in 0..32u64 {
            pm.home_of(PageId(p), GpmId((p % 4) as u16));
        }
        pm.take_offline(&[GpmId(2)]);
        let mut w = SnapWriter::new();
        pm.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = PageMap::read_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.placement(), pm.placement());
        assert_eq!(back.assigned_pages(), pm.assigned_pages());
        assert!(back.is_offline(GpmId(2)));
        for p in 0..32u64 {
            assert_eq!(back.peek_home(PageId(p)), pm.peek_home(PageId(p)));
            assert_eq!(back.is_rehomed(PageId(p)), pm.is_rehomed(PageId(p)));
        }
        // Same future behavior: first touches and GPU homes agree.
        assert_eq!(
            back.home_of(PageId(99), GpmId(1)),
            pm.home_of(PageId(99), GpmId(1))
        );
        for b in 0..16u64 {
            assert_eq!(
                back.gpu_home(GpuId(1), BlockAddr(b), GpmId(0)),
                pm.gpu_home(GpuId(1), BlockAddr(b), GpmId(0))
            );
        }
    }

    #[test]
    fn snapshot_refuses_out_of_range_homes_and_masks() {
        use hmg_sim::{SnapError, SnapReader, SnapWriter, SnapshotRead, SnapshotWrite};
        let topo = Topology::new(2, 2);
        // Home GPM index 9 does not exist in a 2x2 system.
        let mut w = SnapWriter::new();
        topo.write_snap(&mut w);
        w.put_u8(0);
        w.put_u64(1); // one home entry
        w.put_u64(5); // PageId(5)
        w.put_u16(9); // GpmId(9): out of range
        w.put_u64(0); // offline mask
        w.put_u64(0); // empty rehomed set
        assert!(matches!(
            PageMap::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(SnapError::Malformed(_))
        ));

        // Offline mask naming GPM 60 in a 4-GPM system.
        let mut w = SnapWriter::new();
        topo.write_snap(&mut w);
        w.put_u8(0);
        w.put_u64(0); // no homes
        w.put_u64(1u64 << 60);
        w.put_u64(0);
        assert!(matches!(
            PageMap::read_snap(&mut SnapReader::new(&w.into_bytes())),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn gpu_home_spreads_blocks_across_modules() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let mut seen = std::collections::HashSet::new();
        for b in 0..64u64 {
            seen.insert(pm.gpu_home(GpuId(2), BlockAddr(b), GpmId(0)));
        }
        assert_eq!(seen.len(), 4, "all four modules should serve as GPU homes");
    }
}
