//! NUMA page placement and home-node resolution.
//!
//! The *system home* GPM of every address is decided at page granularity
//! (2 MB pages, Table II) by the placement policy — first-touch by
//! default, as the paper's simulator inherits from MCM-GPU and NUMA-GPU
//! work [5, 13]. Under HMG every other GPU additionally designates a
//! *GPU home* GPM per directory block via a hash (Section V-A); within
//! the owning GPU the GPU home coincides with the system home (Fig. 6).

use std::collections::HashMap;

use hmg_interconnect::{GpmId, GpuId, Topology};
use hmg_sim::rng::hash64;

use crate::addr::{BlockAddr, PageId};

/// Placement policy for the system home of each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePlacement {
    /// The page is homed at the GPM that first touches it — the paper's
    /// default (maximizes locality under contiguous CTA scheduling).
    #[default]
    FirstTouch,
    /// The page is homed by hashing its page number across all GPMs —
    /// the "static distribution" alternative (used as an ablation).
    Interleaved,
}

/// Tracks page-to-home-GPM assignments and answers home-node queries.
///
/// # Example
///
/// ```
/// use hmg_mem::{PageMap, PagePlacement};
/// use hmg_mem::addr::PageId;
/// use hmg_interconnect::{Topology, GpmId};
///
/// let topo = Topology::new(2, 2);
/// let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
/// let home = pm.home_of(PageId(5), GpmId(3));
/// assert_eq!(home, GpmId(3)); // first touch wins
/// assert_eq!(pm.home_of(PageId(5), GpmId(0)), GpmId(3)); // sticky
/// ```
#[derive(Debug)]
pub struct PageMap {
    topo: Topology,
    placement: PagePlacement,
    homes: HashMap<PageId, GpmId>,
}

impl PageMap {
    /// Creates an empty map for `topo` under `placement`.
    pub fn new(topo: Topology, placement: PagePlacement) -> Self {
        PageMap {
            topo,
            placement,
            homes: HashMap::new(),
        }
    }

    /// The placement policy in force.
    pub fn placement(&self) -> PagePlacement {
        self.placement
    }

    /// Returns the system home GPM of `page`, assigning it on first use
    /// according to the placement policy (`toucher` is the GPM issuing
    /// the access).
    pub fn home_of(&mut self, page: PageId, toucher: GpmId) -> GpmId {
        match self.placement {
            PagePlacement::FirstTouch => *self.homes.entry(page).or_insert(toucher),
            PagePlacement::Interleaved => {
                let n = self.topo.num_gpms() as u64;
                GpmId((hash64(page.0) % n) as u16)
            }
        }
    }

    /// The home of `page` if already assigned (always `Some` under
    /// interleaved placement).
    pub fn peek_home(&self, page: PageId) -> Option<GpmId> {
        match self.placement {
            PagePlacement::FirstTouch => self.homes.get(&page).copied(),
            PagePlacement::Interleaved => {
                let n = self.topo.num_gpms() as u64;
                Some(GpmId((hash64(page.0) % n) as u16))
            }
        }
    }

    /// Number of pages assigned so far (first-touch only).
    pub fn assigned_pages(&self) -> usize {
        self.homes.len()
    }

    /// HMG's *GPU home* for directory block `block` within `gpu`, given
    /// the block's system home `sys_home`. Within the owning GPU the GPU
    /// home is the system home itself; elsewhere it is a hash across the
    /// GPU's modules.
    pub fn gpu_home(&self, gpu: GpuId, block: BlockAddr, sys_home: GpmId) -> GpmId {
        if self.topo.gpu_of(sys_home) == gpu {
            sys_home
        } else {
            let local = (hash64(block.0) % self.topo.gpms_per_gpu() as u64) as u16;
            self.topo.gpm(gpu, local)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_sticky() {
        let topo = Topology::new(4, 4);
        let mut pm = PageMap::new(topo, PagePlacement::FirstTouch);
        assert_eq!(pm.home_of(PageId(1), GpmId(9)), GpmId(9));
        assert_eq!(pm.home_of(PageId(1), GpmId(2)), GpmId(9));
        assert_eq!(pm.assigned_pages(), 1);
        assert_eq!(pm.peek_home(PageId(1)), Some(GpmId(9)));
        assert_eq!(pm.peek_home(PageId(2)), None);
    }

    #[test]
    fn interleaved_ignores_toucher_and_spreads() {
        let topo = Topology::new(4, 4);
        let mut pm = PageMap::new(topo, PagePlacement::Interleaved);
        let mut seen = std::collections::HashSet::new();
        for p in 0..256u64 {
            let h = pm.home_of(PageId(p), GpmId(0));
            assert_eq!(pm.home_of(PageId(p), GpmId(5)), h, "deterministic");
            seen.insert(h);
        }
        assert!(seen.len() >= 12, "interleaving should hit most GPMs");
    }

    #[test]
    fn gpu_home_in_owning_gpu_is_system_home() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let sys_home = GpmId(6); // GPU1
        let gh = pm.gpu_home(GpuId(1), BlockAddr(77), sys_home);
        assert_eq!(gh, sys_home);
    }

    #[test]
    fn gpu_home_elsewhere_is_within_that_gpu_and_deterministic() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let sys_home = GpmId(6); // GPU1
        for b in 0..100u64 {
            let gh = pm.gpu_home(GpuId(3), BlockAddr(b), sys_home);
            assert_eq!(topo.gpu_of(gh), GpuId(3));
            assert_eq!(pm.gpu_home(GpuId(3), BlockAddr(b), sys_home), gh);
        }
    }

    #[test]
    fn gpu_home_spreads_blocks_across_modules() {
        let topo = Topology::new(4, 4);
        let pm = PageMap::new(topo, PagePlacement::FirstTouch);
        let mut seen = std::collections::HashSet::new();
        for b in 0..64u64 {
            seen.insert(pm.gpu_home(GpuId(2), BlockAddr(b), GpmId(0)));
        }
        assert_eq!(seen.len(), 4, "all four modules should serve as GPU homes");
    }
}
