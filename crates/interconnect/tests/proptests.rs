//! Randomized property tests for the interconnect: per-port FIFO
//! delivery, byte conservation, bandwidth lower bounds, and topology
//! round trips. Driven by the in-repo SplitMix64 [`Rng`] rather than an
//! external property-testing crate so the workspace builds offline.

use hmg_interconnect::{Fabric, FabricConfig, GpmId, Link, MsgClass, Topology};
use hmg_sim::{Cycle, Rng};

const CASES: u64 = 64;

/// Deliveries over one port never reorder, for any offered schedule
/// of send times and sizes.
#[test]
fn link_is_fifo() {
    for case in 0..CASES {
        let mut r = Rng::new(0xF1F0 + case);
        let n = r.gen_range(1, 200) as usize;
        let mut sends: Vec<(u64, u32)> = (0..n)
            .map(|_| (r.gen_range(0, 10_000), r.gen_range(1, 4096) as u32))
            .collect();
        let bpc = r.gen_range(1, 512) as u32;
        let lat = r.gen_range(0, 1000);
        let mut link = Link::new(bpc as f64, Cycle(lat));
        sends.sort_by_key(|&(t, _)| t);
        let mut prev = Cycle::ZERO;
        for (t, bytes) in sends {
            let arrival = link.send(Cycle(t), bytes);
            assert!(arrival >= prev, "FIFO violated");
            assert!(arrival >= Cycle(t + lat), "faster than latency");
            prev = arrival;
        }
    }
}

/// A port can never move data faster than its bandwidth: the last
/// arrival is bounded below by total bytes over bandwidth.
#[test]
fn link_respects_bandwidth() {
    for case in 0..CASES {
        let mut r = Rng::new(0xBA2D + case);
        let n = r.gen_range(1, 100) as usize;
        let sizes: Vec<u32> = (0..n).map(|_| r.gen_range(1, 4096) as u32).collect();
        let bpc = r.gen_range(1, 256) as u32;
        let mut link = Link::new(bpc as f64, Cycle(0));
        let mut last = Cycle::ZERO;
        for &b in &sizes {
            last = link.send(Cycle::ZERO, b);
        }
        let total: u64 = sizes.iter().map(|&b| b as u64).sum();
        let min_cycles = (total as f64 / bpc as f64).floor() as u64;
        assert!(last.as_u64() >= min_cycles, "{last} < {min_cycles}");
        assert_eq!(link.bytes_sent(), total);
    }
}

/// Fabric byte accounting conserves: per-class totals equal the sum
/// of what was sent, with inter-tier bytes counted only for
/// cross-GPU messages.
#[test]
fn fabric_accounting_conserves() {
    for case in 0..CASES {
        let mut r = Rng::new(0xACC0 + case);
        let n = r.gen_range(1, 150) as usize;
        let msgs: Vec<(u16, u16, u32)> = (0..n)
            .map(|_| {
                (
                    r.gen_range(0, 16) as u16,
                    r.gen_range(0, 16) as u16,
                    r.gen_range(1, 2048) as u32,
                )
            })
            .collect();
        let topo = Topology::new(4, 4);
        let mut fabric = Fabric::new(topo, FabricConfig::paper_default());
        let mut intra_expected = 0u64;
        let mut inter_expected = 0u64;
        for &(s, d, bytes) in &msgs {
            let (src, dst) = (GpmId(s), GpmId(d));
            fabric.send(Cycle::ZERO, src, dst, bytes, MsgClass::Data);
            if src != dst {
                intra_expected += bytes as u64;
                if !topo.same_gpu(src, dst) {
                    inter_expected += bytes as u64;
                }
            }
        }
        assert_eq!(fabric.stats().intra_bytes(MsgClass::Data), intra_expected);
        assert_eq!(fabric.stats().inter_bytes(MsgClass::Data), inter_expected);
        for class in [MsgClass::Request, MsgClass::Inv, MsgClass::Ctrl] {
            assert_eq!(fabric.stats().total_bytes(class), 0);
        }
    }
}

/// Cross-GPU messages are never faster than same-GPU messages of the
/// same size on an idle fabric.
#[test]
fn inter_gpu_is_never_faster() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1E7A + case);
        let bytes = r.gen_range(1, 4096) as u32;
        let topo = Topology::new(2, 2);
        let mut f1 = Fabric::new(topo, FabricConfig::paper_default());
        let mut f2 = Fabric::new(topo, FabricConfig::paper_default());
        let intra = f1.send(Cycle::ZERO, GpmId(0), GpmId(1), bytes, MsgClass::Data);
        let inter = f2.send(Cycle::ZERO, GpmId(0), GpmId(2), bytes, MsgClass::Data);
        assert!(inter >= intra);
    }
}

/// Topology coordinate round trips hold for arbitrary shapes.
#[test]
fn topology_roundtrips() {
    for case in 0..CASES {
        let mut r = Rng::new(0x7090 + case);
        let gpus = r.gen_range(1, 12) as u16;
        let gpms = r.gen_range(1, 8) as u16;
        let t = Topology::new(gpus, gpms);
        assert_eq!(t.num_gpms(), gpus * gpms);
        for gpm in t.all_gpms() {
            let gpu = t.gpu_of(gpm);
            let local = t.local_index(gpm);
            assert_eq!(t.gpm(gpu, local), gpm);
            assert!(local < gpms);
            assert!(gpu.0 < gpus);
        }
        // Every GPU's block partitions the GPM space.
        let mut seen = std::collections::HashSet::new();
        for gpu in t.all_gpus() {
            for gpm in t.gpms_of(gpu) {
                assert!(seen.insert(gpm), "GPM listed twice");
                assert_eq!(t.gpu_of(gpm), gpu);
            }
        }
        assert_eq!(seen.len() as u16, t.num_gpms());
    }
}
