//! Property-based tests for the interconnect: per-port FIFO delivery,
//! byte conservation, bandwidth lower bounds, and topology round trips.

use proptest::prelude::*;

use hmg_interconnect::{Fabric, FabricConfig, GpmId, Link, MsgClass, Topology};
use hmg_sim::Cycle;

proptest! {
    /// Deliveries over one port never reorder, for any offered schedule
    /// of send times and sizes.
    #[test]
    fn link_is_fifo(
        sends in proptest::collection::vec((0u64..10_000, 1u32..4096), 1..200),
        bpc in 1u32..512,
        lat in 0u64..1000,
    ) {
        let mut link = Link::new(bpc as f64, Cycle(lat));
        let mut sorted = sends.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut prev = Cycle::ZERO;
        for (t, bytes) in sorted {
            let arrival = link.send(Cycle(t), bytes);
            prop_assert!(arrival >= prev, "FIFO violated");
            prop_assert!(arrival >= Cycle(t + lat), "faster than latency");
            prev = arrival;
        }
    }

    /// A port can never move data faster than its bandwidth: the last
    /// arrival is bounded below by total bytes over bandwidth.
    #[test]
    fn link_respects_bandwidth(
        sizes in proptest::collection::vec(1u32..4096, 1..100),
        bpc in 1u32..256,
    ) {
        let mut link = Link::new(bpc as f64, Cycle(0));
        let mut last = Cycle::ZERO;
        for &b in &sizes {
            last = link.send(Cycle::ZERO, b);
        }
        let total: u64 = sizes.iter().map(|&b| b as u64).sum();
        let min_cycles = (total as f64 / bpc as f64).floor() as u64;
        prop_assert!(last.as_u64() >= min_cycles, "{last} < {min_cycles}");
        prop_assert_eq!(link.bytes_sent(), total);
    }

    /// Fabric byte accounting conserves: per-class totals equal the sum
    /// of what was sent, with inter-tier bytes counted only for
    /// cross-GPU messages.
    #[test]
    fn fabric_accounting_conserves(
        msgs in proptest::collection::vec((0u16..16, 0u16..16, 1u32..2048), 1..150),
    ) {
        let topo = Topology::new(4, 4);
        let mut fabric = Fabric::new(topo, FabricConfig::paper_default());
        let mut intra_expected = 0u64;
        let mut inter_expected = 0u64;
        for &(s, d, bytes) in &msgs {
            let (src, dst) = (GpmId(s), GpmId(d));
            fabric.send(Cycle::ZERO, src, dst, bytes, MsgClass::Data);
            if src != dst {
                intra_expected += bytes as u64;
                if !topo.same_gpu(src, dst) {
                    inter_expected += bytes as u64;
                }
            }
        }
        prop_assert_eq!(fabric.stats().intra_bytes(MsgClass::Data), intra_expected);
        prop_assert_eq!(fabric.stats().inter_bytes(MsgClass::Data), inter_expected);
        for class in [MsgClass::Request, MsgClass::Inv, MsgClass::Ctrl] {
            prop_assert_eq!(fabric.stats().total_bytes(class), 0);
        }
    }

    /// Cross-GPU messages are never faster than same-GPU messages of the
    /// same size on an idle fabric.
    #[test]
    fn inter_gpu_is_never_faster(bytes in 1u32..4096) {
        let topo = Topology::new(2, 2);
        let mut f1 = Fabric::new(topo, FabricConfig::paper_default());
        let mut f2 = Fabric::new(topo, FabricConfig::paper_default());
        let intra = f1.send(Cycle::ZERO, GpmId(0), GpmId(1), bytes, MsgClass::Data);
        let inter = f2.send(Cycle::ZERO, GpmId(0), GpmId(2), bytes, MsgClass::Data);
        prop_assert!(inter >= intra);
    }

    /// Topology coordinate round trips hold for arbitrary shapes.
    #[test]
    fn topology_roundtrips(gpus in 1u16..12, gpms in 1u16..8) {
        let t = Topology::new(gpus, gpms);
        prop_assert_eq!(t.num_gpms(), gpus * gpms);
        for gpm in t.all_gpms() {
            let gpu = t.gpu_of(gpm);
            let local = t.local_index(gpm);
            prop_assert_eq!(t.gpm(gpu, local), gpm);
            prop_assert!(local < gpms);
            prop_assert!(gpu.0 < gpus);
        }
        // Every GPU's block partitions the GPM space.
        let mut seen = std::collections::HashSet::new();
        for gpu in t.all_gpus() {
            for gpm in t.gpms_of(gpu) {
                prop_assert!(seen.insert(gpm), "GPM listed twice");
                prop_assert_eq!(t.gpu_of(gpm), gpu);
            }
        }
        prop_assert_eq!(seen.len() as u16, t.num_gpms());
    }
}
