//! Liveness map and alternate-path selection for fail-in-place
//! reconfiguration.
//!
//! The fabric of Section II is a two-tier switch network: every GPM has
//! a port on its GPU's crossbar (first tier) and every GPU a port on
//! the inter-GPU switch (second tier). When the *direct* first-tier
//! path between two GPMs dies, an alternate path still exists — up
//! through the GPU-level switch port and back down — strictly longer
//! but FIFO-preserving. When a GPM (or a whole GPU) dies there is no
//! alternate path to it; the engine must stop routing to it and re-home
//! the state it owned. [`Liveness`] is the shared source of truth for
//! both decisions.

use crate::ids::{GpmId, GpuId, Topology};

/// Which path a message takes between two GPMs of the same GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The direct first-tier crossbar path.
    Direct,
    /// The fallback through the GPU's second-tier switch port (a down
    /// direct link is being routed around).
    SecondTier,
}

/// Tracks which components are alive, and from what cycle a direct
/// link is down. All queries are pure; mutation happens only through
/// the `mark_*` methods, so the map is deterministic given the fault
/// plan.
#[derive(Debug, Clone)]
pub struct Liveness {
    topo: Topology,
    /// Bit *i* set = global GPM *i* is offline.
    down_gpms: u64,
    /// A permanently down direct intra-GPU link, with its death cycle.
    down_link: Option<(GpmId, GpmId, u64)>,
}

impl Liveness {
    /// Everything alive.
    pub fn new(topo: Topology) -> Self {
        Liveness {
            topo,
            down_gpms: 0,
            down_link: None,
        }
    }

    /// The topology this map covers.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Marks one GPM permanently offline.
    pub fn mark_gpm_down(&mut self, gpm: GpmId) {
        assert!(gpm.0 < self.topo.num_gpms(), "{gpm} out of range");
        self.down_gpms |= 1u64 << gpm.index();
    }

    /// Marks the direct link between `a` and `b` (same GPU) permanently
    /// down from `at_cycle` on.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are equal or belong to different GPUs —
    /// only first-tier links have a second-tier alternate path.
    pub fn mark_link_down(&mut self, a: GpmId, b: GpmId, at_cycle: u64) {
        assert_ne!(a, b, "link endpoints must differ");
        assert!(
            self.topo.same_gpu(a, b),
            "link-down models a first-tier (intra-GPU) link: {a} and {b} are on different GPUs"
        );
        self.down_link = Some((a, b, at_cycle));
    }

    /// Whether `gpm` is alive.
    pub fn gpm_alive(&self, gpm: GpmId) -> bool {
        self.down_gpms & (1u64 << gpm.index()) == 0
    }

    /// Whether any GPM of `gpu` is alive.
    pub fn gpu_alive(&self, gpu: GpuId) -> bool {
        self.topo.gpms_of(gpu).any(|g| self.gpm_alive(g))
    }

    /// Whether any component is currently marked down.
    pub fn any_down(&self) -> bool {
        self.down_gpms != 0 || self.down_link.is_some()
    }

    /// The alive GPMs of the whole system, in index order.
    pub fn alive_gpms(&self) -> Vec<GpmId> {
        self.topo
            .all_gpms()
            .filter(|&g| self.gpm_alive(g))
            .collect()
    }

    /// Route selection between two GPMs of the same GPU at `now`:
    /// second tier exactly when the direct link between them is down.
    pub fn route(&self, src: GpmId, dst: GpmId, now: u64) -> RouteKind {
        match self.down_link {
            Some((a, b, at)) if now >= at && ((src, dst) == (a, b) || (src, dst) == (b, a)) => {
                RouteKind::SecondTier
            }
            _ => RouteKind::Direct,
        }
    }
}

impl hmg_sim::SnapshotWrite for Liveness {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.topo.write_snap(w);
        w.put_u64(self.down_gpms);
        self.down_link.write_snap(w);
    }
}

impl hmg_sim::SnapshotRead for Liveness {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let topo = Topology::read_snap(r)?;
        let down_gpms = r.get_u64()?;
        let down_link: Option<(GpmId, GpmId, u64)> = Option::read_snap(r)?;
        if down_gpms >> topo.num_gpms().min(63) != 0 {
            return Err(hmg_sim::SnapError::Malformed(
                "down-GPM mask exceeds topology".into(),
            ));
        }
        if let Some((a, b, _)) = down_link {
            if a == b || a.0 >= topo.num_gpms() || b.0 >= topo.num_gpms() || !topo.same_gpu(a, b) {
                return Err(hmg_sim::SnapError::Malformed(format!(
                    "down link {a}-{b} invalid for topology"
                )));
            }
        }
        Ok(Liveness {
            topo,
            down_gpms,
            down_link,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_alive_by_default() {
        let l = Liveness::new(Topology::new(2, 2));
        assert!(!l.any_down());
        assert!(l.gpm_alive(GpmId(3)));
        assert!(l.gpu_alive(GpuId(1)));
        assert_eq!(l.alive_gpms().len(), 4);
        assert_eq!(l.route(GpmId(0), GpmId(1), 0), RouteKind::Direct);
    }

    #[test]
    fn gpm_death_is_tracked_and_gpu_death_is_derived() {
        let mut l = Liveness::new(Topology::new(2, 2));
        l.mark_gpm_down(GpmId(2));
        assert!(!l.gpm_alive(GpmId(2)));
        assert!(l.gpu_alive(GpuId(1)), "GPM3 still alive");
        l.mark_gpm_down(GpmId(3));
        assert!(!l.gpu_alive(GpuId(1)));
        assert_eq!(l.alive_gpms(), vec![GpmId(0), GpmId(1)]);
        assert!(l.any_down());
    }

    #[test]
    fn down_link_selects_second_tier_from_its_cycle_both_directions() {
        let mut l = Liveness::new(Topology::new(2, 2));
        l.mark_link_down(GpmId(0), GpmId(1), 100);
        assert_eq!(l.route(GpmId(0), GpmId(1), 99), RouteKind::Direct);
        assert_eq!(l.route(GpmId(0), GpmId(1), 100), RouteKind::SecondTier);
        assert_eq!(l.route(GpmId(1), GpmId(0), 5000), RouteKind::SecondTier);
        // Unrelated pairs keep the direct path.
        assert_eq!(l.route(GpmId(2), GpmId(3), 5000), RouteKind::Direct);
    }

    #[test]
    #[should_panic(expected = "different GPUs")]
    fn cross_gpu_link_down_rejected() {
        let mut l = Liveness::new(Topology::new(2, 2));
        l.mark_link_down(GpmId(0), GpmId(2), 0);
    }
}
