#![warn(missing_docs)]

//! Interconnect model for hierarchical multi-GPU systems.
//!
//! Models the two bandwidth tiers the paper's analysis revolves around
//! (Section II-A): the high-bandwidth intra-GPU (inter-GPM) fabric and the
//! bandwidth-constrained inter-GPU links (NVLink/NVSwitch class). Every
//! message is charged serialization delay on the ports it crosses, so link
//! contention and NUMA bottlenecks emerge naturally.
//!
//! * [`ids`] — strongly-typed GPU/GPM identifiers and the [`Topology`].
//! * [`link`] — a single bandwidth/latency-modeled port.
//! * [`fabric`] — the assembled network: routing, per-tier and per-class
//!   byte accounting (needed for the Fig. 11 invalidation-bandwidth data).
//! * [`routing`] — liveness map and alternate-path selection for
//!   fail-in-place reconfiguration around permanent failures.
//!
//! # Example
//!
//! ```
//! use hmg_interconnect::{Topology, GpuId};
//!
//! let topo = Topology::new(4, 4); // 4 GPUs x 4 GPMs (Table II)
//! assert_eq!(topo.num_gpms(), 16);
//! let gpm = topo.gpm(GpuId(2), 3);
//! assert_eq!(topo.gpu_of(gpm), GpuId(2));
//! ```

pub mod fabric;
pub mod ids;
pub mod link;
pub mod routing;

pub use fabric::{Fabric, FabricConfig, FabricStats, MsgClass, TransportConfig, TransportStats};
pub use ids::{GpmId, GpuId, Topology};
pub use link::Link;
pub use routing::{Liveness, RouteKind};
