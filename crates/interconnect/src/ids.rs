//! Strongly-typed identifiers for GPUs and GPU modules, and the system
//! topology that relates them.

use std::fmt;

/// Identifies one GPU in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GpuId(pub u16);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// Identifies one GPU module (GPM) by its *global* (flat) index across the
/// whole system. Use [`Topology`] to convert between global indices and
/// (GPU, local-GPM) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GpmId(pub u16);

impl GpmId {
    /// The raw flat index, handy for indexing per-GPM state vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPM{}", self.0)
    }
}

/// The shape of the system: how many GPUs, and how many GPMs per GPU.
///
/// GPM global indices are laid out GPU-major: GPU *g*'s modules are
/// `g * gpms_per_gpu .. (g + 1) * gpms_per_gpu`.
///
/// # Example
///
/// ```
/// use hmg_interconnect::{Topology, GpuId, GpmId};
///
/// let t = Topology::new(2, 4);
/// assert_eq!(t.gpm(GpuId(1), 0), GpmId(4));
/// assert_eq!(t.local_index(GpmId(6)), 2);
/// assert!(t.same_gpu(GpmId(4), GpmId(7)));
/// assert!(!t.same_gpu(GpmId(3), GpmId(4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    num_gpus: u16,
    gpms_per_gpu: u16,
}

impl Topology {
    /// Creates a topology of `num_gpus` GPUs with `gpms_per_gpu` modules each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_gpus: u16, gpms_per_gpu: u16) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        assert!(gpms_per_gpu > 0, "need at least one GPM per GPU");
        Topology {
            num_gpus,
            gpms_per_gpu,
        }
    }

    /// Number of GPUs in the system.
    #[inline]
    pub fn num_gpus(&self) -> u16 {
        self.num_gpus
    }

    /// Number of GPMs in each GPU.
    #[inline]
    pub fn gpms_per_gpu(&self) -> u16 {
        self.gpms_per_gpu
    }

    /// Total number of GPMs across all GPUs.
    #[inline]
    pub fn num_gpms(&self) -> u16 {
        self.num_gpus * self.gpms_per_gpu
    }

    /// The GPU that owns `gpm`.
    ///
    /// # Panics
    ///
    /// Panics if `gpm` is out of range.
    #[inline]
    pub fn gpu_of(&self, gpm: GpmId) -> GpuId {
        assert!(gpm.0 < self.num_gpms(), "{gpm} out of range");
        GpuId(gpm.0 / self.gpms_per_gpu)
    }

    /// `gpm`'s index within its GPU (`0..gpms_per_gpu`).
    #[inline]
    pub fn local_index(&self, gpm: GpmId) -> u16 {
        assert!(gpm.0 < self.num_gpms(), "{gpm} out of range");
        gpm.0 % self.gpms_per_gpu
    }

    /// The global id of GPU `gpu`'s `local`-th module.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    #[inline]
    pub fn gpm(&self, gpu: GpuId, local: u16) -> GpmId {
        assert!(gpu.0 < self.num_gpus, "{gpu} out of range");
        assert!(local < self.gpms_per_gpu, "local GPM {local} out of range");
        GpmId(gpu.0 * self.gpms_per_gpu + local)
    }

    /// Whether two GPMs sit on the same GPU.
    #[inline]
    pub fn same_gpu(&self, a: GpmId, b: GpmId) -> bool {
        self.gpu_of(a) == self.gpu_of(b)
    }

    /// Iterates over the GPMs of one GPU.
    pub fn gpms_of(&self, gpu: GpuId) -> impl Iterator<Item = GpmId> {
        let base = gpu.0 * self.gpms_per_gpu;
        (base..base + self.gpms_per_gpu).map(GpmId)
    }

    /// Iterates over every GPM in the system.
    pub fn all_gpms(&self) -> impl Iterator<Item = GpmId> {
        (0..self.num_gpms()).map(GpmId)
    }

    /// Iterates over every GPU in the system.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.num_gpus).map(GpuId)
    }

    /// Maximum number of sharers one coherence-directory entry must track
    /// under HMG's hierarchical scheme: the other GPMs of the home GPU plus
    /// the other GPUs — `M + N - 2` for an M-GPM, N-GPU system (§V-A).
    #[inline]
    pub fn max_hierarchical_sharers(&self) -> u16 {
        self.gpms_per_gpu + self.num_gpus - 2
    }
}

impl hmg_sim::SnapshotWrite for GpuId {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u16(self.0);
    }
}
impl hmg_sim::SnapshotRead for GpuId {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(GpuId(r.get_u16()?))
    }
}

impl hmg_sim::SnapshotWrite for GpmId {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u16(self.0);
    }
}
impl hmg_sim::SnapshotRead for GpmId {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(GpmId(r.get_u16()?))
    }
}

impl hmg_sim::SnapshotWrite for Topology {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_u16(self.num_gpus);
        w.put_u16(self.gpms_per_gpu);
    }
}
impl hmg_sim::SnapshotRead for Topology {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let num_gpus = r.get_u16()?;
        let gpms_per_gpu = r.get_u16()?;
        if num_gpus == 0 || gpms_per_gpu == 0 {
            return Err(hmg_sim::SnapError::Malformed(format!(
                "empty topology {num_gpus}x{gpms_per_gpu}"
            )));
        }
        Ok(Topology::new(num_gpus, gpms_per_gpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_gpu_major() {
        let t = Topology::new(4, 4);
        assert_eq!(t.num_gpms(), 16);
        assert_eq!(t.gpm(GpuId(0), 0), GpmId(0));
        assert_eq!(t.gpm(GpuId(3), 3), GpmId(15));
        assert_eq!(t.gpu_of(GpmId(5)), GpuId(1));
        assert_eq!(t.local_index(GpmId(5)), 1);
    }

    #[test]
    fn roundtrip_all_gpms() {
        let t = Topology::new(3, 5);
        for gpm in t.all_gpms() {
            let gpu = t.gpu_of(gpm);
            let local = t.local_index(gpm);
            assert_eq!(t.gpm(gpu, local), gpm);
        }
    }

    #[test]
    fn same_gpu_classification() {
        let t = Topology::new(2, 2);
        assert!(t.same_gpu(GpmId(0), GpmId(1)));
        assert!(!t.same_gpu(GpmId(1), GpmId(2)));
    }

    #[test]
    fn gpms_of_yields_the_right_block() {
        let t = Topology::new(2, 3);
        let v: Vec<_> = t.gpms_of(GpuId(1)).collect();
        assert_eq!(v, vec![GpmId(3), GpmId(4), GpmId(5)]);
    }

    #[test]
    fn table_ii_sharer_budget() {
        // 4 GPMs x 4 GPUs: at most 6 sharers, matching §VII-C's 6-bit vector.
        let t = Topology::new(4, 4);
        assert_eq!(t.max_hierarchical_sharers(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpm_panics() {
        Topology::new(1, 1).gpu_of(GpmId(1));
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(GpuId(3).to_string(), "GPU3");
        assert_eq!(GpmId(7).to_string(), "GPM7");
    }
}
