//! The assembled two-tier network: intra-GPU crossbar ports per GPM and
//! inter-GPU switch ports per GPU, with per-class byte accounting.

use hmg_sim::{Cycle, FaultPlan, Rng};

use crate::ids::{GpmId, Topology};
use crate::link::Link;
use crate::routing::{Liveness, RouteKind};

/// Seed perturbation for the transport's drop stream, so it is
/// decorrelated from the engine's fault stream while still being a pure
/// function of the plan seed (golden-ratio constant, as in SplitMix64).
const DROP_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Seed perturbation for the transport's wire-corruption stream
/// ([`hmg_sim::fault::MsgFlip`]), decorrelated from both the engine
/// stream and the drop stream (SplitMix64 finalizer constant).
const FLIP_STREAM_SALT: u64 = 0xBF58_476D_1CE4_E5B9;

/// Classification of protocol traffic, used for the bandwidth breakdowns
/// in the evaluation (Fig. 11 charges only `Inv` bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Load/atomic request headers.
    Request,
    /// Load/atomic responses carrying a cache line.
    Data,
    /// Store write-through traffic (header + sector payload).
    StoreData,
    /// Coherence invalidation messages.
    Inv,
    /// Control traffic: release fences and their acknowledgments.
    Ctrl,
}

impl MsgClass {
    /// All classes, in index order.
    pub const ALL: [MsgClass; 5] = [
        MsgClass::Request,
        MsgClass::Data,
        MsgClass::StoreData,
        MsgClass::Inv,
        MsgClass::Ctrl,
    ];

    #[inline]
    fn idx(self) -> usize {
        match self {
            MsgClass::Request => 0,
            MsgClass::Data => 1,
            MsgClass::StoreData => 2,
            MsgClass::Inv => 3,
            MsgClass::Ctrl => 4,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Request => "request",
            MsgClass::Data => "data",
            MsgClass::StoreData => "store",
            MsgClass::Inv => "inv",
            MsgClass::Ctrl => "ctrl",
        }
    }
}

/// Bandwidth and latency parameters for the two network tiers.
///
/// Bandwidths are specified the way Table II does: an aggregate
/// bidirectional intra-GPU figure per GPU (2 TB/s) and a per-direction
/// inter-GPU link figure (200 GB/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Core clock in GHz; converts GB/s into bytes per cycle.
    pub freq_ghz: f64,
    /// Aggregate intra-GPU (inter-GPM) bandwidth per GPU, GB/s,
    /// bidirectional. Each GPM gets `intra / gpms_per_gpu` per direction.
    pub intra_gpu_gbps: f64,
    /// Inter-GPU bandwidth per GPU, GB/s, each direction.
    pub inter_gpu_gbps: f64,
    /// One-way latency between two GPMs of the same GPU.
    pub intra_latency: Cycle,
    /// One-way latency between two GPMs of different GPUs.
    pub inter_latency: Cycle,
}

impl FabricConfig {
    /// Table II defaults: 1.3 GHz, 2 TB/s intra-GPU, 200 GB/s inter-GPU.
    pub fn paper_default() -> Self {
        FabricConfig {
            freq_ghz: 1.3,
            intra_gpu_gbps: 2000.0,
            inter_gpu_gbps: 200.0,
            intra_latency: Cycle(90),
            inter_latency: Cycle(360),
        }
    }

    fn bytes_per_cycle(&self, gbps: f64) -> f64 {
        gbps / self.freq_ghz
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::paper_default()
    }
}

/// Parameters of the reliable-delivery (retransmission) layer.
///
/// Every message carries a per-channel sequence number; a lost delivery
/// attempt is noticed after `timeout` cycles and replayed, with the
/// timeout doubling on every consecutive loss of the same message
/// (capped at `2^MAX_BACKOFF_SHIFT`). After `max_retries` losses the
/// transport stops charging further timeouts and the final attempt is
/// delivered — the layer guarantees delivery, the cap only bounds the
/// modeled cost. All of this is deterministic: drops are drawn from a
/// dedicated SplitMix64 stream seeded by the fault-plan seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Cycles before a lost attempt is detected and replayed.
    pub timeout: Cycle,
    /// Maximum charged retransmissions per message.
    pub max_retries: u32,
    /// Retransmissions exhausted before a delivery-timeout escalation
    /// declares the destination *permanently* failed and hands the
    /// problem to the engine's fail-in-place reconfiguration. The
    /// charged detection downtime is the sum of the backed-off timeouts
    /// ([`TransportConfig::escalation_cycles`]).
    pub fail_escalation_attempts: u32,
    /// Per-message checksum verification at delivery (on by default).
    /// A corrupt delivery ([`hmg_sim::fault::MsgFlip`]) is detected at
    /// the receiver and charged like a lost delivery — replayed through
    /// the same timeout/backoff path. Disabling this lets corrupt
    /// messages through *silently*; the engine surfaces them in
    /// `IntegrityStats::silent_corruptions`.
    pub checksums: bool,
}

impl TransportConfig {
    /// Largest exponent used by the exponential backoff (`timeout * 2^6`).
    pub const MAX_BACKOFF_SHIFT: u32 = 6;

    /// Modeled cost of declaring a component dead: the delivery-timeout
    /// escalation of `fail_escalation_attempts` unacknowledged
    /// retransmissions, each backed off like a lost attempt.
    pub fn escalation_cycles(&self) -> u64 {
        (0..self.fail_escalation_attempts)
            .map(|i| self.timeout.0 << i.min(Self::MAX_BACKOFF_SHIFT))
            .sum()
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            timeout: Cycle(500),
            max_retries: 16,
            fail_escalation_attempts: 4,
            checksums: true,
        }
    }
}

/// Counters of the reliable-delivery layer, for degradation reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages routed through the network (both tiers).
    pub messages: u64,
    /// Lost delivery attempts that were replayed.
    pub retransmissions: u64,
    /// Messages that lost at least one attempt but were recovered.
    pub recovered: u64,
    /// Total cycles of timeout backoff charged to replayed messages.
    pub retry_cycles: u64,
    /// Messages routed around a permanently down direct link via the
    /// second-tier switch path (fail-in-place reconfiguration).
    pub reroutes: u64,
    /// Wire corruptions injected by a `flip-msg` plan (delivery
    /// attempts whose payload/header bits were flipped in flight).
    pub flips_injected: u64,
    /// Corrupt deliveries caught by the per-message checksum and
    /// replayed like a lost delivery.
    pub checksum_retransmits: u64,
    /// Corrupt deliveries that sailed through because checksum
    /// verification was disabled — silent wrong data on the wire.
    pub silent_flips: u64,
}

/// Byte totals observed by the fabric, split by tier and message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    intra_bytes: [u64; 5],
    inter_bytes: [u64; 5],
    intra_msgs: [u64; 5],
    inter_msgs: [u64; 5],
    transport: TransportStats,
}

impl FabricStats {
    /// Bytes of class `class` that crossed intra-GPU ports.
    pub fn intra_bytes(&self, class: MsgClass) -> u64 {
        self.intra_bytes[class.idx()]
    }

    /// Bytes of class `class` that crossed inter-GPU ports.
    pub fn inter_bytes(&self, class: MsgClass) -> u64 {
        self.inter_bytes[class.idx()]
    }

    /// Messages of class `class` on intra-GPU ports.
    pub fn intra_msgs(&self, class: MsgClass) -> u64 {
        self.intra_msgs[class.idx()]
    }

    /// Messages of class `class` on inter-GPU ports.
    pub fn inter_msgs(&self, class: MsgClass) -> u64 {
        self.inter_msgs[class.idx()]
    }

    /// Total bytes of a class over both tiers.
    pub fn total_bytes(&self, class: MsgClass) -> u64 {
        self.intra_bytes(class) + self.inter_bytes(class)
    }

    /// Reliable-delivery layer counters (retransmissions, backoff cost).
    pub fn transport(&self) -> TransportStats {
        self.transport
    }

    /// Converts a byte total into GB/s given elapsed cycles and frequency;
    /// this is the unit Fig. 11 reports.
    pub fn gbps(bytes: u64, elapsed: Cycle, freq_ghz: f64) -> f64 {
        if elapsed == Cycle::ZERO {
            return 0.0;
        }
        let seconds = elapsed.to_seconds(freq_ghz);
        bytes as f64 / 1e9 / seconds
    }
}

/// The two-tier interconnect: per-GPM intra-GPU ports and per-GPU
/// inter-GPU ports, with store-and-forward routing between them.
///
/// # Example
///
/// ```
/// use hmg_interconnect::{Fabric, FabricConfig, MsgClass, Topology, GpmId};
/// use hmg_sim::Cycle;
///
/// let topo = Topology::new(2, 2);
/// let mut fabric = Fabric::new(topo, FabricConfig::paper_default());
/// // GPM0 -> GPM3 crosses the inter-GPU tier.
/// let arrival = fabric.send(Cycle(0), GpmId(0), GpmId(3), 128, MsgClass::Data);
/// assert!(arrival > Cycle(0));
/// assert!(fabric.stats().inter_bytes(MsgClass::Data) >= 128);
/// ```
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    config: FabricConfig,
    intra_egress: Vec<Link>,
    intra_ingress: Vec<Link>,
    inter_egress: Vec<Link>,
    inter_ingress: Vec<Link>,
    stats: FabricStats,
    /// Injected link faults (bandwidth degradation / stall windows,
    /// on-wire loss). Empty by default; installed via
    /// [`Fabric::apply_faults`].
    faults: FaultPlan,
    /// Reliable-delivery parameters (timeouts, retry cap).
    transport: TransportConfig,
    /// Per-channel (src, dst) message sequence numbers; the transport
    /// tags every routed message so replays are identifiable and
    /// delivery per channel stays in order. Dense: GPM ids are compact
    /// indices, so channel (src, dst) lives at `src * num_gpms + dst`.
    seq: Vec<u64>,
    /// Drop stream, armed only when the plan injects [`hmg_sim::fault::MsgDrop`].
    /// `None` means no draws happen at all, so fault-free runs are
    /// bit-identical to a build without the transport layer.
    drop_rng: Option<Rng>,
    /// Wire-corruption stream, armed only when the plan injects
    /// [`hmg_sim::fault::MsgFlip`]; same no-draw guarantee as the drop
    /// stream when unarmed.
    flip_rng: Option<Rng>,
    /// Which components are alive and which direct link (if any) is
    /// permanently down; consulted by `send` for alternate-path routing
    /// and shared with the engine's reconfiguration logic.
    liveness: Liveness,
}

impl Fabric {
    /// Builds the fabric for `topo` with the given tier parameters.
    pub fn new(topo: Topology, config: FabricConfig) -> Self {
        let intra_bpc = config.bytes_per_cycle(config.intra_gpu_gbps / topo.gpms_per_gpu() as f64);
        let inter_bpc = config.bytes_per_cycle(config.inter_gpu_gbps);
        // Propagation latency is split between the egress and ingress hop.
        let intra_half = Cycle(config.intra_latency.0 / 2);
        let intra_rest = config.intra_latency - intra_half;
        let inter_half = Cycle(config.inter_latency.0 / 2);
        let _ = inter_half;
        // Inter-GPU messages also cross the intra fabric at both ends, so
        // the inter ports carry only the remaining latency.
        let inter_port_lat = Cycle(
            config
                .inter_latency
                .0
                .saturating_sub(config.intra_latency.0)
                / 2,
        );
        Fabric {
            topo,
            config,
            intra_egress: (0..topo.num_gpms())
                .map(|_| Link::new(intra_bpc, intra_half))
                .collect(),
            intra_ingress: (0..topo.num_gpms())
                .map(|_| Link::new(intra_bpc, intra_rest))
                .collect(),
            inter_egress: (0..topo.num_gpus())
                .map(|_| Link::new(inter_bpc, inter_port_lat))
                .collect(),
            inter_ingress: (0..topo.num_gpus())
                .map(|_| Link::new(inter_bpc, inter_port_lat))
                .collect(),
            stats: FabricStats::default(),
            faults: FaultPlan::default(),
            transport: TransportConfig::default(),
            seq: vec![0; topo.num_gpms() as usize * topo.num_gpms() as usize],
            drop_rng: None,
            flip_rng: None,
            liveness: Liveness::new(topo),
        }
    }

    /// Installs the link-fault portion of `plan` (degrade/stall windows
    /// and on-wire loss). Engine-side faults in the plan are ignored
    /// here. Arming a drop plan seeds the transport's dedicated drop
    /// stream from the plan seed, so the retransmission schedule is a
    /// pure function of (plan, traffic).
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        self.faults = plan.clone();
        self.drop_rng = plan.drop.map(|_| Rng::new(plan.seed ^ DROP_STREAM_SALT));
        self.flip_rng = plan
            .flip_msg
            .map(|_| Rng::new(plan.seed ^ FLIP_STREAM_SALT));
        if let Some(l) = plan.link_down {
            self.liveness
                .mark_link_down(GpmId(l.a), GpmId(l.b), l.at_cycle);
        }
    }

    /// Overrides the reliable-delivery parameters.
    pub fn set_transport(&mut self, transport: TransportConfig) {
        self.transport = transport;
    }

    /// Enables or disables per-message checksum verification. With
    /// checksums off, injected in-flight flips deliver corrupt payloads
    /// silently instead of triggering retransmission.
    pub fn set_checksums(&mut self, on: bool) {
        self.transport.checksums = on;
    }

    /// The reliable-delivery parameters in effect.
    pub fn transport_config(&self) -> TransportConfig {
        self.transport
    }

    /// The liveness/routing map (read-only; mutate through
    /// [`Fabric::mark_gpm_down`] and [`Fabric::apply_faults`]).
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Marks one GPM permanently offline. Called by the engine when a
    /// reconfiguration epoch activates a `gpm-offline`/`gpu-offline`
    /// fault; the engine stops routing to dead GPMs, so the fabric only
    /// records the fact for liveness queries and diagnostics.
    pub fn mark_gpm_down(&mut self, gpm: GpmId) {
        self.liveness.mark_gpm_down(gpm);
    }

    /// Next sequence number the transport will assign on the `src → dst`
    /// channel (equals the number of messages routed on it so far).
    pub fn channel_seq(&self, src: GpmId, dst: GpmId) -> u64 {
        self.seq[self.chan(src, dst)]
    }

    /// Dense index of the `src -> dst` transport channel.
    #[inline]
    fn chan(&self, src: GpmId, dst: GpmId) -> usize {
        src.index() * self.topo.num_gpms() as usize + dst.index()
    }

    /// Plays out the loss/retransmission episode for one message:
    /// returns how many attempts were lost and the total timeout backoff
    /// charged. Deterministic: draws come from the dedicated drop
    /// stream, one per delivery attempt, only when a drop plan is armed.
    fn drop_episode(&mut self) -> (u32, Cycle) {
        let (Some(d), Some(rng)) = (self.faults.drop, self.drop_rng.as_mut()) else {
            return (0, Cycle::ZERO);
        };
        let mut retries = 0u32;
        let mut backoff = 0u64;
        while retries < self.transport.max_retries && rng.gen_bool(d.prob) {
            backoff += self.transport.timeout.0 << retries.min(TransportConfig::MAX_BACKOFF_SHIFT);
            retries += 1;
        }
        (retries, Cycle(backoff))
    }

    /// Plays out the wire-corruption episode for one message: each
    /// delivery attempt flips with the plan probability. With checksums
    /// on, a corrupt attempt is detected at the receiver and charged
    /// like a lost delivery (replay + timeout backoff), the
    /// retransmission itself subject to further corruption; with
    /// checksums off the corruption is counted as silent and delivered.
    /// Returns the extra retransmissions and backoff to charge.
    /// Deterministic: draws come from the dedicated flip stream, armed
    /// only when the plan injects `flip-msg`.
    fn flip_episode(&mut self) -> (u32, Cycle) {
        let (Some(m), Some(rng)) = (self.faults.flip_msg, self.flip_rng.as_mut()) else {
            return (0, Cycle::ZERO);
        };
        if !self.transport.checksums {
            // One draw for the single (unverified) delivery attempt.
            if rng.gen_bool(m.prob) {
                self.stats.transport.flips_injected += 1;
                self.stats.transport.silent_flips += 1;
            }
            return (0, Cycle::ZERO);
        }
        let mut retries = 0u32;
        let mut backoff = 0u64;
        while retries < self.transport.max_retries && rng.gen_bool(m.prob) {
            self.stats.transport.flips_injected += 1;
            self.stats.transport.checksum_retransmits += 1;
            backoff += self.transport.timeout.0 << retries.min(TransportConfig::MAX_BACKOFF_SHIFT);
            retries += 1;
        }
        (retries, Cycle(backoff))
    }

    /// The topology this fabric was built for.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Routes `bytes` from `src` to `dst` starting at `now`; returns the
    /// arrival time. Same-GPM traffic does not touch the network.
    pub fn send(
        &mut self,
        now: Cycle,
        src: GpmId,
        dst: GpmId,
        bytes: u32,
        class: MsgClass,
    ) -> Cycle {
        if src == dst {
            return now;
        }
        // Injected link faults: degrade/stall windows are keyed off the
        // time the message is *offered*, applied uniformly to every hop
        // it crosses. Slowing serialization keeps per-port FIFO order,
        // so these faults are tolerated, not protocol-breaking.
        let slow = self.faults.link_slowdown(now.0);
        let extra = Cycle(self.faults.link_stall_extra(now.0));
        // Reliable delivery: tag the message with its channel sequence
        // number and play out any on-wire loss at the egress hop. The
        // replay episode (extra serializations + timeout backoff) holds
        // the egress port, so everything behind it queues up and the
        // channel stays FIFO — loss is recovered, never reordered.
        let chan = self.chan(src, dst);
        self.seq[chan] += 1;
        let (drop_retries, drop_backoff) = self.drop_episode();
        // Checksum-detected corruptions replay through the same retry
        // machinery as losses; the episodes compose additively.
        let (flip_retries, flip_backoff) = self.flip_episode();
        let retries = drop_retries + flip_retries;
        let backoff = drop_backoff + flip_backoff;
        self.stats.transport.messages += 1;
        self.stats.transport.retransmissions += retries as u64;
        self.stats.transport.recovered += u64::from(retries > 0);
        self.stats.transport.retry_cycles += backoff.0;
        if self.topo.same_gpu(src, dst) {
            self.stats.intra_bytes[class.idx()] += bytes as u64;
            self.stats.intra_msgs[class.idx()] += 1;
            let t1 = self.intra_egress[src.index()]
                .send_retried(now, bytes, slow, extra, retries, backoff);
            match self.liveness.route(src, dst, now.0) {
                RouteKind::Direct => {
                    self.intra_ingress[dst.index()].send_degraded(t1, bytes, slow, extra)
                }
                RouteKind::SecondTier => {
                    // Fail-in-place: the direct first-tier link is gone,
                    // so hop up through the GPU's second-tier switch
                    // port and back down. Strictly longer than the
                    // direct path and serialized behind everything
                    // already queued on the shared ports, so the
                    // src → dst channel stays FIFO across the failure.
                    self.stats.transport.reroutes += 1;
                    self.stats.inter_bytes[class.idx()] += bytes as u64;
                    self.stats.inter_msgs[class.idx()] += 1;
                    let gpu = self.topo.gpu_of(src).0 as usize;
                    let t2 = self.inter_egress[gpu].send_degraded(t1, bytes, slow, extra);
                    let t3 = self.inter_ingress[gpu].send_degraded(t2, bytes, slow, extra);
                    self.intra_ingress[dst.index()].send_degraded(t3, bytes, slow, extra)
                }
            }
        } else {
            self.stats.intra_bytes[class.idx()] += bytes as u64;
            self.stats.intra_msgs[class.idx()] += 1;
            self.stats.inter_bytes[class.idx()] += bytes as u64;
            self.stats.inter_msgs[class.idx()] += 1;
            let src_gpu = self.topo.gpu_of(src);
            let dst_gpu = self.topo.gpu_of(dst);
            let t1 = self.intra_egress[src.index()]
                .send_retried(now, bytes, slow, extra, retries, backoff);
            let t2 = self.inter_egress[src_gpu.0 as usize].send_degraded(t1, bytes, slow, extra);
            let t3 = self.inter_ingress[dst_gpu.0 as usize].send_degraded(t2, bytes, slow, extra);
            self.intra_ingress[dst.index()].send_degraded(t3, bytes, slow, extra)
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Utilization of a GPU's inter-GPU egress port over `elapsed` cycles.
    pub fn inter_egress_utilization(&self, gpu: crate::GpuId, elapsed: Cycle) -> f64 {
        self.inter_egress[gpu.0 as usize].utilization(elapsed)
    }

    /// Utilization of a GPM's intra-GPU egress port over `elapsed` cycles.
    pub fn intra_egress_utilization(&self, gpm: GpmId, elapsed: Cycle) -> f64 {
        self.intra_egress[gpm.index()].utilization(elapsed)
    }

    /// Utilization of a GPM's intra-GPU ingress port over `elapsed` cycles.
    pub fn intra_ingress_utilization(&self, gpm: GpmId, elapsed: Cycle) -> f64 {
        self.intra_ingress[gpm.index()].utilization(elapsed)
    }

    /// Backlog of a GPM's intra-GPU ports relative to `now`: cycles of
    /// queued serialization on (egress, ingress). Used by the deadlock
    /// diagnostic to show whether a stuck address sits behind a full
    /// link queue.
    pub fn intra_backlog(&self, gpm: GpmId, now: Cycle) -> (u64, u64) {
        (
            self.intra_egress[gpm.index()]
                .next_free()
                .0
                .saturating_sub(now.0),
            self.intra_ingress[gpm.index()]
                .next_free()
                .0
                .saturating_sub(now.0),
        )
    }

    /// Backlog of a GPU's inter-GPU ports relative to `now`: cycles of
    /// queued serialization on (egress, ingress).
    pub fn inter_backlog(&self, gpu: crate::GpuId, now: Cycle) -> (u64, u64) {
        (
            self.inter_egress[gpu.0 as usize]
                .next_free()
                .0
                .saturating_sub(now.0),
            self.inter_ingress[gpu.0 as usize]
                .next_free()
                .0
                .saturating_sub(now.0),
        )
    }
}

impl hmg_sim::SnapshotWrite for TransportStats {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        for v in [
            self.messages,
            self.retransmissions,
            self.recovered,
            self.retry_cycles,
            self.reroutes,
            self.flips_injected,
            self.checksum_retransmits,
            self.silent_flips,
        ] {
            w.put_u64(v);
        }
    }
}

impl hmg_sim::SnapshotRead for TransportStats {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(TransportStats {
            messages: r.get_u64()?,
            retransmissions: r.get_u64()?,
            recovered: r.get_u64()?,
            retry_cycles: r.get_u64()?,
            reroutes: r.get_u64()?,
            flips_injected: r.get_u64()?,
            checksum_retransmits: r.get_u64()?,
            silent_flips: r.get_u64()?,
        })
    }
}

impl hmg_sim::SnapshotWrite for FabricStats {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.intra_bytes.write_snap(w);
        self.inter_bytes.write_snap(w);
        self.intra_msgs.write_snap(w);
        self.inter_msgs.write_snap(w);
        self.transport.write_snap(w);
    }
}

impl hmg_sim::SnapshotRead for FabricStats {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        Ok(FabricStats {
            intra_bytes: <[u64; 5]>::read_snap(r)?,
            inter_bytes: <[u64; 5]>::read_snap(r)?,
            intra_msgs: <[u64; 5]>::read_snap(r)?,
            inter_msgs: <[u64; 5]>::read_snap(r)?,
            transport: TransportStats::read_snap(r)?,
        })
    }
}

// The fabric's snapshot covers only state that traffic mutates: the
// four port groups, traffic stats, per-channel sequence numbers, the
// two armed fault streams, and the liveness map. Configuration (topo,
// tier parameters, fault plan, transport knobs) is rebuilt by the
// owning engine from the run configuration before `restore_snap_state`
// is called, which lets the restore path validate shape mismatches as
// stale-identity-style corruption instead of trusting the file.
impl hmg_sim::SnapshotWrite for Fabric {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        self.intra_egress.write_snap(w);
        self.intra_ingress.write_snap(w);
        self.inter_egress.write_snap(w);
        self.inter_ingress.write_snap(w);
        self.stats.write_snap(w);
        self.seq.write_snap(w);
        self.drop_rng.write_snap(w);
        self.flip_rng.write_snap(w);
        self.liveness.write_snap(w);
    }
}

impl Fabric {
    /// Restores the traffic-mutable state serialized by this fabric's
    /// `SnapshotWrite` into a freshly constructed fabric of the same
    /// topology and configuration. Refuses (typed, no panic) snapshots
    /// whose port counts or channel table don't match this fabric.
    pub fn restore_snap_state(
        &mut self,
        r: &mut hmg_sim::SnapReader<'_>,
    ) -> Result<(), hmg_sim::SnapError> {
        use hmg_sim::SnapshotRead;
        let intra_egress: Vec<Link> = Vec::read_snap(r)?;
        let intra_ingress: Vec<Link> = Vec::read_snap(r)?;
        let inter_egress: Vec<Link> = Vec::read_snap(r)?;
        let inter_ingress: Vec<Link> = Vec::read_snap(r)?;
        let stats = FabricStats::read_snap(r)?;
        let seq: Vec<u64> = Vec::read_snap(r)?;
        let drop_rng: Option<Rng> = Option::read_snap(r)?;
        let flip_rng: Option<Rng> = Option::read_snap(r)?;
        let liveness = Liveness::read_snap(r)?;
        let gpms = self.topo.num_gpms() as usize;
        let gpus = self.topo.num_gpus() as usize;
        if intra_egress.len() != gpms
            || intra_ingress.len() != gpms
            || inter_egress.len() != gpus
            || inter_ingress.len() != gpus
            || seq.len() != gpms * gpms
            || liveness.topology() != self.topo
        {
            return Err(hmg_sim::SnapError::Malformed(
                "fabric snapshot shape does not match this topology".into(),
            ));
        }
        if drop_rng.is_some() != self.drop_rng.is_some()
            || flip_rng.is_some() != self.flip_rng.is_some()
        {
            return Err(hmg_sim::SnapError::Malformed(
                "fabric snapshot fault streams do not match the armed plan".into(),
            ));
        }
        self.intra_egress = intra_egress;
        self.intra_ingress = intra_ingress;
        self.inter_egress = inter_egress;
        self.inter_ingress = inter_ingress;
        self.stats = stats;
        self.seq = seq;
        self.drop_rng = drop_rng;
        self.flip_rng = flip_rng;
        self.liveness = liveness;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuId;

    fn small_fabric() -> Fabric {
        let topo = Topology::new(2, 2);
        Fabric::new(
            topo,
            FabricConfig {
                freq_ghz: 1.0,
                intra_gpu_gbps: 128.0, // 64 B/cyc per GPM
                inter_gpu_gbps: 16.0,  // 16 B/cyc per GPU
                intra_latency: Cycle(10),
                inter_latency: Cycle(50),
            },
        )
    }

    #[test]
    fn escalation_cycles_sum_backed_off_timeouts() {
        let t = TransportConfig::default();
        // 4 attempts at 500 cycles: 500 + 1000 + 2000 + 4000.
        assert_eq!(t.escalation_cycles(), 7500);
        let none = TransportConfig {
            fail_escalation_attempts: 0,
            ..t
        };
        assert_eq!(none.escalation_cycles(), 0);
    }

    #[test]
    fn link_down_reroutes_second_tier_from_its_cycle() {
        let mut f = small_fabric();
        let plan = FaultPlan::parse("link-down=0-1@1000").unwrap();
        f.apply_faults(&plan);
        // Before the failure the direct path is in use: latency is the
        // intra hop plus serialization.
        let direct = f.send(Cycle(0), GpmId(0), GpmId(1), 64, MsgClass::Data);
        assert_eq!(f.stats().transport().reroutes, 0);
        // After the failure the same send takes the second-tier path:
        // strictly slower, counted, and charged on the inter ports.
        let inter_before = f.stats().inter_bytes(MsgClass::Data);
        let rerouted = f.send(Cycle(5000), GpmId(0), GpmId(1), 64, MsgClass::Data);
        assert_eq!(f.stats().transport().reroutes, 1);
        assert!(
            rerouted.0 - 5000 > direct.0,
            "alternate path must be slower: {rerouted:?} vs {direct:?}"
        );
        assert_eq!(f.stats().inter_bytes(MsgClass::Data), inter_before + 64);
        // The unrelated same-GPU pair still routes directly.
        f.send(Cycle(5000), GpmId(2), GpmId(3), 64, MsgClass::Data);
        assert_eq!(f.stats().transport().reroutes, 1);
    }

    #[test]
    fn rerouted_channel_stays_fifo_across_the_failure() {
        let mut f = small_fabric();
        f.apply_faults(&FaultPlan::parse("link-down=0-1@100").unwrap());
        // A message offered just before the failure and one just after:
        // the later (rerouted) one must still arrive later.
        let before = f.send(Cycle(99), GpmId(0), GpmId(1), 64, MsgClass::Data);
        let after = f.send(Cycle(100), GpmId(0), GpmId(1), 64, MsgClass::Data);
        assert!(after > before, "{after:?} vs {before:?}");
    }

    #[test]
    fn liveness_map_reflects_marked_deaths() {
        let mut f = small_fabric();
        assert!(f.liveness().gpm_alive(GpmId(1)));
        f.mark_gpm_down(GpmId(1));
        assert!(!f.liveness().gpm_alive(GpmId(1)));
        assert!(f.liveness().gpu_alive(GpuId(0)), "GPM0 survives");
    }

    #[test]
    fn same_gpm_is_free() {
        let mut f = small_fabric();
        assert_eq!(
            f.send(Cycle(5), GpmId(0), GpmId(0), 128, MsgClass::Data),
            Cycle(5)
        );
        assert_eq!(f.stats().total_bytes(MsgClass::Data), 0);
    }

    #[test]
    fn intra_gpu_crosses_only_intra_tier() {
        let mut f = small_fabric();
        let a = f.send(Cycle(0), GpmId(0), GpmId(1), 128, MsgClass::Request);
        // 2 ports x 2 cycles serialization + 10 total latency = 14.
        assert_eq!(a, Cycle(14));
        assert_eq!(f.stats().intra_bytes(MsgClass::Request), 128);
        assert_eq!(f.stats().inter_bytes(MsgClass::Request), 0);
    }

    #[test]
    fn inter_gpu_crosses_both_tiers() {
        let mut f = small_fabric();
        let a = f.send(Cycle(0), GpmId(0), GpmId(2), 128, MsgClass::Data);
        assert!(a > Cycle(14), "inter-GPU must be slower than intra");
        assert_eq!(f.stats().intra_bytes(MsgClass::Data), 128);
        assert_eq!(f.stats().inter_bytes(MsgClass::Data), 128);
    }

    #[test]
    fn inter_gpu_bandwidth_throttles() {
        let mut f = small_fabric();
        // Saturate the 16 B/cyc inter link with 128 B messages.
        let mut last = Cycle::ZERO;
        for _ in 0..100 {
            last = f.send(Cycle(0), GpmId(0), GpmId(2), 128, MsgClass::Data);
        }
        // 100 * 128 B at 16 B/cyc is at least 800 cycles of serialization.
        assert!(last >= Cycle(800), "last arrival {last}");
    }

    #[test]
    fn per_class_accounting_is_separate() {
        let mut f = small_fabric();
        f.send(Cycle(0), GpmId(0), GpmId(2), 16, MsgClass::Inv);
        f.send(Cycle(0), GpmId(0), GpmId(2), 144, MsgClass::StoreData);
        assert_eq!(f.stats().inter_bytes(MsgClass::Inv), 16);
        assert_eq!(f.stats().inter_bytes(MsgClass::StoreData), 144);
        assert_eq!(f.stats().inter_msgs(MsgClass::Inv), 1);
    }

    #[test]
    fn fifo_per_directed_pair() {
        let mut f = small_fabric();
        let mut prev = Cycle::ZERO;
        for i in 0..50 {
            let a = f.send(Cycle(i), GpmId(1), GpmId(3), 64, MsgClass::Inv);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn gbps_conversion() {
        // 1e9 bytes over 1e9 cycles at 1 GHz = 1 second -> 1 GB/s.
        let g = FabricStats::gbps(1_000_000_000, Cycle(1_000_000_000), 1.0);
        assert!((g - 1.0).abs() < 1e-9);
        assert_eq!(FabricStats::gbps(100, Cycle::ZERO, 1.0), 0.0);
    }

    #[test]
    fn utilization_reported() {
        let mut f = small_fabric();
        for _ in 0..10 {
            f.send(Cycle(0), GpmId(0), GpmId(2), 128, MsgClass::Data);
        }
        let u = f.inter_egress_utilization(GpuId(0), Cycle(100));
        assert!(u > 0.5, "u={u}");
    }

    #[test]
    fn fault_windows_slow_only_in_window_sends() {
        let mut clean = small_fabric();
        let mut faulty = small_fabric();
        faulty.apply_faults(&FaultPlan::parse("degrade=100..200/4,stall=100..200/33").unwrap());
        // Outside the window, identical timing.
        assert_eq!(
            clean.send(Cycle(0), GpmId(0), GpmId(1), 128, MsgClass::Data),
            faulty.send(Cycle(0), GpmId(0), GpmId(1), 128, MsgClass::Data),
        );
        // Inside the window, strictly later delivery (both hops pay the
        // 33-cycle stall and 4x serialization).
        let c = clean.send(Cycle(150), GpmId(0), GpmId(1), 128, MsgClass::Data);
        let f = faulty.send(Cycle(150), GpmId(0), GpmId(1), 128, MsgClass::Data);
        assert!(f >= c + Cycle(66), "clean {c:?} faulty {f:?}");
        // After the window, new sends only queue behind the backlog.
        let c2 = clean.send(Cycle(300), GpmId(0), GpmId(1), 128, MsgClass::Data);
        let f2 = faulty.send(Cycle(300), GpmId(0), GpmId(1), 128, MsgClass::Data);
        assert!(f2 >= c2 && f2 < f + Cycle(200), "c2 {c2:?} f2 {f2:?}");
    }

    #[test]
    fn sequence_numbers_count_per_channel() {
        let mut f = small_fabric();
        assert_eq!(f.channel_seq(GpmId(0), GpmId(1)), 0);
        f.send(Cycle(0), GpmId(0), GpmId(1), 64, MsgClass::Request);
        f.send(Cycle(0), GpmId(0), GpmId(1), 64, MsgClass::Request);
        f.send(Cycle(0), GpmId(1), GpmId(0), 64, MsgClass::Data);
        assert_eq!(f.channel_seq(GpmId(0), GpmId(1)), 2);
        assert_eq!(f.channel_seq(GpmId(1), GpmId(0)), 1);
        // Same-GPM traffic never touches the network or the transport.
        f.send(Cycle(0), GpmId(2), GpmId(2), 64, MsgClass::Data);
        assert_eq!(f.channel_seq(GpmId(2), GpmId(2)), 0);
        assert_eq!(f.stats().transport().messages, 3);
    }

    #[test]
    fn drop_free_runs_do_not_touch_the_drop_stream() {
        let mut clean = small_fabric();
        let mut stalled = small_fabric();
        // A plan without `drop` must leave timing identical even though
        // the transport layer sits on the path.
        stalled.apply_faults(&FaultPlan::parse("seed=9").unwrap());
        for i in 0..20 {
            assert_eq!(
                clean.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
                stalled.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
            );
        }
        assert_eq!(clean.stats().transport().retransmissions, 0);
        assert_eq!(stalled.stats().transport().retransmissions, 0);
    }

    #[test]
    fn dropped_messages_are_recovered_deterministically() {
        let plan = FaultPlan::parse("drop=0.3,seed=42").unwrap();
        let run = |plan: &FaultPlan| {
            let mut f = small_fabric();
            f.apply_faults(plan);
            let arrivals: Vec<Cycle> = (0..200)
                .map(|i| f.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::StoreData))
                .collect();
            (arrivals, f.stats().transport())
        };
        let (a1, t1) = run(&plan);
        let (a2, t2) = run(&plan);
        // Same plan -> bit-identical retransmission schedule.
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
        assert!(
            t1.retransmissions > 0,
            "0.3 over 200 messages must drop some"
        );
        assert!(t1.recovered > 0 && t1.recovered <= t1.retransmissions);
        assert!(t1.retry_cycles >= t1.retransmissions * 500);
        // A different seed reshuffles the schedule.
        let (a3, _) = run(&FaultPlan::parse("drop=0.3,seed=43").unwrap());
        assert_ne!(a1, a3);
        // Every message still arrives, FIFO per channel.
        let mut prev = Cycle::ZERO;
        for &a in &a1 {
            assert!(a >= prev, "recovered channel must stay FIFO");
            prev = a;
        }
    }

    #[test]
    fn flip_free_runs_do_not_touch_the_flip_stream() {
        let mut clean = small_fabric();
        let mut seeded = small_fabric();
        // A plan without `flip-msg` must leave timing identical even
        // though the checksum layer sits on the path.
        seeded.apply_faults(&FaultPlan::parse("seed=11").unwrap());
        for i in 0..20 {
            assert_eq!(
                clean.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
                seeded.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
            );
        }
        assert_eq!(seeded.stats().transport().flips_injected, 0);
        assert_eq!(seeded.stats().transport().checksum_retransmits, 0);
        assert_eq!(seeded.stats().transport().silent_flips, 0);
    }

    #[test]
    fn flipped_messages_are_recovered_deterministically() {
        let plan = FaultPlan::parse("flip-msg=0.3,seed=42").unwrap();
        let run = |plan: &FaultPlan| {
            let mut f = small_fabric();
            f.apply_faults(plan);
            let arrivals: Vec<Cycle> = (0..200)
                .map(|i| f.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::StoreData))
                .collect();
            (arrivals, f.stats().transport())
        };
        let (a1, t1) = run(&plan);
        let (a2, t2) = run(&plan);
        // Same plan -> bit-identical retransmission schedule.
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
        assert!(t1.flips_injected > 0, "0.3 over 200 messages must flip");
        // Every corruption is detected and replayed, never delivered.
        assert_eq!(t1.checksum_retransmits, t1.flips_injected);
        assert_eq!(t1.silent_flips, 0);
        assert_eq!(t1.retransmissions, t1.checksum_retransmits);
        assert!(t1.retry_cycles >= t1.checksum_retransmits * 500);
        // A different seed reshuffles the schedule.
        let (a3, _) = run(&FaultPlan::parse("flip-msg=0.3,seed=43").unwrap());
        assert_ne!(a1, a3);
        // Every message still arrives, FIFO per channel.
        let mut prev = Cycle::ZERO;
        for &a in &a1 {
            assert!(a >= prev, "recovered channel must stay FIFO");
            prev = a;
        }
    }

    #[test]
    fn checksums_off_delivers_flips_silently() {
        let mut f = small_fabric();
        f.transport.checksums = false;
        f.apply_faults(&FaultPlan::parse("flip-msg=0.5,seed=3").unwrap());
        let mut clean = small_fabric();
        for i in 0..100 {
            // Without checksums there is nothing to detect: timing is
            // identical to the fault-free fabric...
            assert_eq!(
                f.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
                clean.send(Cycle(i), GpmId(0), GpmId(2), 128, MsgClass::Data),
            );
        }
        let t = f.stats().transport();
        // ...but the corruption went through undetected.
        assert!(t.flips_injected > 0);
        assert_eq!(t.silent_flips, t.flips_injected);
        assert_eq!(t.checksum_retransmits, 0);
        assert_eq!(t.retransmissions, 0);
    }

    #[test]
    fn flip_recovery_is_slower_than_fault_free() {
        let mut clean = small_fabric();
        let mut noisy = small_fabric();
        noisy.apply_faults(&FaultPlan::parse("flip-msg=0.25,seed=7").unwrap());
        let mut last_clean = Cycle::ZERO;
        let mut last_noisy = Cycle::ZERO;
        for i in 0..100 {
            last_clean = clean.send(Cycle(i), GpmId(0), GpmId(1), 128, MsgClass::Data);
            last_noisy = noisy.send(Cycle(i), GpmId(0), GpmId(1), 128, MsgClass::Data);
        }
        assert!(
            last_noisy > last_clean,
            "noisy {last_noisy} must trail clean {last_clean}"
        );
    }

    #[test]
    fn drop_recovery_is_slower_than_fault_free() {
        let mut clean = small_fabric();
        let mut lossy = small_fabric();
        lossy.apply_faults(&FaultPlan::parse("drop=0.25,seed=7").unwrap());
        let mut last_clean = Cycle::ZERO;
        let mut last_lossy = Cycle::ZERO;
        for i in 0..100 {
            last_clean = clean.send(Cycle(i), GpmId(0), GpmId(1), 128, MsgClass::Data);
            last_lossy = lossy.send(Cycle(i), GpmId(0), GpmId(1), 128, MsgClass::Data);
        }
        assert!(
            last_lossy > last_clean,
            "lossy {last_lossy} must trail clean {last_clean}"
        );
    }

    #[test]
    fn snapshot_round_trip_resumes_timing_bit_identically() {
        use hmg_sim::{SnapReader, SnapWriter, SnapshotWrite as _};
        let plan = FaultPlan::parse("drop=0.2,flip-msg=0.1,link-down=0-1@50,seed=21").unwrap();
        let mut a = small_fabric();
        a.apply_faults(&plan);
        let mut b = small_fabric();
        b.apply_faults(&plan);
        // Warm both up identically, snapshot A, restore into a *fresh*
        // fabric, then drive the pair onward: every arrival and every
        // stat must stay bit-identical.
        for i in 0..120u64 {
            let (s, d) = (GpmId((i % 4) as u16), GpmId(((i + 1) % 4) as u16));
            assert_eq!(
                a.send(Cycle(i), s, d, 96, MsgClass::Data),
                b.send(Cycle(i), s, d, 96, MsgClass::Data)
            );
        }
        let mut w = SnapWriter::new();
        a.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut c = small_fabric();
        c.apply_faults(&plan);
        c.restore_snap_state(&mut SnapReader::new(&bytes)).unwrap();
        for i in 120..240u64 {
            let (s, d) = (GpmId((i % 4) as u16), GpmId(((i + 3) % 4) as u16));
            assert_eq!(
                b.send(Cycle(i), s, d, 128, MsgClass::StoreData),
                c.send(Cycle(i), s, d, 128, MsgClass::StoreData)
            );
        }
        assert_eq!(*b.stats(), *c.stats());
        assert_eq!(
            b.channel_seq(GpmId(0), GpmId(1)),
            c.channel_seq(GpmId(0), GpmId(1))
        );
    }

    #[test]
    fn snapshot_restore_refuses_wrong_topology() {
        use hmg_sim::{SnapError, SnapReader, SnapWriter, SnapshotWrite as _};
        let mut a = small_fabric(); // 2x2
        a.send(Cycle(0), GpmId(0), GpmId(1), 64, MsgClass::Data);
        let mut w = SnapWriter::new();
        a.write_snap(&mut w);
        let bytes = w.into_bytes();
        let mut other = Fabric::new(Topology::new(4, 4), FabricConfig::paper_default());
        assert!(matches!(
            other.restore_snap_state(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
        // Mismatched armed fault streams are refused too.
        let mut lossy = small_fabric();
        lossy.apply_faults(&FaultPlan::parse("drop=0.5,seed=1").unwrap());
        assert!(matches!(
            lossy.restore_snap_state(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn backlogs_report_queued_serialization() {
        let mut f = small_fabric();
        assert_eq!(f.intra_backlog(GpmId(0), Cycle(0)), (0, 0));
        for _ in 0..100 {
            f.send(Cycle(0), GpmId(0), GpmId(2), 128, MsgClass::StoreData);
        }
        // 100 x 128 B at 16 B/cyc on the inter tier: deep egress queue.
        let (eg, _in) = f.inter_backlog(GpuId(0), Cycle(0));
        assert!(eg > 500, "egress backlog {eg}");
        // Relative to a later `now` the backlog shrinks to zero.
        assert_eq!(f.inter_backlog(GpuId(0), Cycle(1_000_000)), (0, 0));
    }
}
