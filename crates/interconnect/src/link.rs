//! A single bandwidth/latency-modeled network port.

use hmg_sim::Cycle;

/// One directed port with finite bandwidth and fixed propagation latency.
///
/// A message of *b* bytes offered at time *t* begins serializing at
/// `max(t, next_free)`, occupies the port for `b / bytes_per_cycle` cycles,
/// and arrives `latency` cycles after serialization completes. Because
/// `next_free` only moves forward, deliveries over one port are FIFO —
/// the property HMG's ack-free invalidations and release fences rely on
/// (Section IV, "Release").
///
/// # Example
///
/// ```
/// use hmg_interconnect::Link;
/// use hmg_sim::Cycle;
///
/// // 64 bytes/cycle, 10-cycle latency.
/// let mut port = Link::new(64.0, Cycle(10));
/// let a1 = port.send(Cycle(0), 128); // 2 cycles serialization + 10
/// let a2 = port.send(Cycle(0), 128); // queued behind the first
/// assert_eq!(a1, Cycle(12));
/// assert_eq!(a2, Cycle(14));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: Cycle,
    /// Time (in fractional cycles) at which the port next becomes idle.
    next_free: f64,
    bytes_sent: u64,
    messages_sent: u64,
    retransmissions: u64,
    busy_cycles: f64,
}

impl Link {
    /// Creates a port that moves `bytes_per_cycle` bytes each cycle and
    /// adds `latency` cycles of propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        assert!(
            bytes_per_cycle > 0.0,
            "link bandwidth must be positive, got {bytes_per_cycle}"
        );
        Link {
            bytes_per_cycle,
            latency,
            next_free: 0.0,
            bytes_sent: 0,
            messages_sent: 0,
            retransmissions: 0,
            busy_cycles: 0.0,
        }
    }

    /// Offers a message of `bytes` to the port at time `now`; returns its
    /// arrival time at the far end.
    pub fn send(&mut self, now: Cycle, bytes: u32) -> Cycle {
        self.send_degraded(now, bytes, 1.0, Cycle::ZERO)
    }

    /// [`Link::send`] under injected link faults: serialization takes
    /// `slowdown` times as long (bandwidth degradation) and delivery
    /// sees `extra_latency` additional cycles (transient stall). With
    /// `slowdown == 1.0` and zero extra latency this is exactly `send`.
    /// Occupying the port longer preserves FIFO delivery, so degraded
    /// windows slow the protocol down without breaking its ordering
    /// assumption.
    pub fn send_degraded(
        &mut self,
        now: Cycle,
        bytes: u32,
        slowdown: f64,
        extra_latency: Cycle,
    ) -> Cycle {
        debug_assert!(
            slowdown >= 1.0,
            "slowdown factor must be >= 1, got {slowdown}"
        );
        let start = self.next_free.max(now.0 as f64);
        let ser = bytes as f64 / self.bytes_per_cycle * slowdown;
        self.next_free = start + ser;
        self.bytes_sent += bytes as u64;
        self.messages_sent += 1;
        self.busy_cycles += ser;
        Cycle((start + ser).ceil() as u64) + self.latency + extra_latency
    }

    /// [`Link::send_degraded`] through the reliable-delivery layer: the
    /// first `retries` delivery attempts were lost on the wire, so the
    /// message serializes `retries + 1` times and additionally waits out
    /// `backoff` cycles of delivery timeouts before the surviving copy
    /// departs. The whole episode *occupies the port* — the sender's
    /// replay buffer holds the channel until the message is through
    /// (go-back-N style) — so later messages queue behind it and FIFO
    /// delivery order is preserved, which is exactly the property HMG's
    /// ack-free invalidation scheme needs from a recovered link.
    pub fn send_retried(
        &mut self,
        now: Cycle,
        bytes: u32,
        slowdown: f64,
        extra_latency: Cycle,
        retries: u32,
        backoff: Cycle,
    ) -> Cycle {
        debug_assert!(
            slowdown >= 1.0,
            "slowdown factor must be >= 1, got {slowdown}"
        );
        let start = self.next_free.max(now.0 as f64);
        let ser_once = bytes as f64 / self.bytes_per_cycle * slowdown;
        let occupancy = ser_once * (retries + 1) as f64 + backoff.0 as f64;
        self.next_free = start + occupancy;
        self.bytes_sent += bytes as u64 * (retries + 1) as u64;
        self.messages_sent += 1;
        self.retransmissions += retries as u64;
        self.busy_cycles += ser_once * (retries + 1) as f64;
        Cycle((start + occupancy).ceil() as u64) + self.latency + extra_latency
    }

    /// Earliest time a new message could start serializing.
    pub fn next_free(&self) -> Cycle {
        Cycle(self.next_free.ceil() as u64)
    }

    /// Total bytes pushed through this port.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages pushed through this port.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Lost delivery attempts replayed by the reliable-delivery layer.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Port utilization over `elapsed` simulated cycles, in `[0, 1]`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == Cycle::ZERO {
            0.0
        } else {
            (self.busy_cycles / elapsed.0 as f64).min(1.0)
        }
    }

    /// The configured bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// The configured propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }
}

// The raw f64 port state (`next_free`, `busy_cycles`) round-trips as
// exact bit patterns: the public `next_free()` accessor is ceil-rounded
// and would lose the fractional serialization position that makes
// resumed timing bit-identical.
impl hmg_sim::SnapshotWrite for Link {
    fn write_snap(&self, w: &mut hmg_sim::SnapWriter) {
        w.put_f64(self.bytes_per_cycle);
        w.put_u64(self.latency.0);
        w.put_f64(self.next_free);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.messages_sent);
        w.put_u64(self.retransmissions);
        w.put_f64(self.busy_cycles);
    }
}

impl hmg_sim::SnapshotRead for Link {
    fn read_snap(r: &mut hmg_sim::SnapReader<'_>) -> Result<Self, hmg_sim::SnapError> {
        let bytes_per_cycle = r.get_f64()?;
        if bytes_per_cycle <= 0.0 || bytes_per_cycle.is_nan() {
            return Err(hmg_sim::SnapError::Malformed(format!(
                "link bandwidth {bytes_per_cycle} not positive"
            )));
        }
        Ok(Link {
            bytes_per_cycle,
            latency: Cycle(r.get_u64()?),
            next_free: r.get_f64()?,
            bytes_sent: r.get_u64()?,
            messages_sent: r.get_u64()?,
            retransmissions: r.get_u64()?,
            busy_cycles: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_message_sees_serialization_plus_latency() {
        let mut l = Link::new(32.0, Cycle(100));
        // 128 B at 32 B/cyc = 4 cycles, plus 100 latency.
        assert_eq!(l.send(Cycle(0), 128), Cycle(104));
    }

    #[test]
    fn back_to_back_messages_queue() {
        let mut l = Link::new(32.0, Cycle(0));
        assert_eq!(l.send(Cycle(0), 128), Cycle(4));
        assert_eq!(l.send(Cycle(0), 128), Cycle(8));
        assert_eq!(l.send(Cycle(0), 128), Cycle(12));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut l = Link::new(32.0, Cycle(0));
        l.send(Cycle(0), 32); // busy until cycle 1
        assert_eq!(l.send(Cycle(100), 32), Cycle(101));
    }

    #[test]
    fn delivery_is_fifo() {
        let mut l = Link::new(16.0, Cycle(50));
        let mut prev = Cycle::ZERO;
        for i in 0..100 {
            let a = l.send(Cycle(i), 64);
            assert!(a >= prev, "arrival went backwards");
            prev = a;
        }
    }

    #[test]
    fn fractional_serialization_accumulates_exactly() {
        // 3 bytes/cycle: a 1-byte message serializes in 1/3 cycle. Three
        // back-to-back messages should finish at exactly 1 cycle.
        let mut l = Link::new(3.0, Cycle(0));
        l.send(Cycle(0), 1);
        l.send(Cycle(0), 1);
        let a = l.send(Cycle(0), 1);
        assert_eq!(a, Cycle(1));
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(64.0, Cycle(1));
        l.send(Cycle(0), 100);
        l.send(Cycle(0), 28);
        assert_eq!(l.bytes_sent(), 128);
        assert_eq!(l.messages_sent(), 2);
        // 128 B / 64 Bpc = 2 busy cycles out of 4.
        assert!((l.utilization(Cycle(4)) - 0.5).abs() < 1e-9);
        assert_eq!(l.utilization(Cycle::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        Link::new(0.0, Cycle(0));
    }

    #[test]
    fn retried_send_with_zero_retries_matches_plain_send() {
        let mut a = Link::new(32.0, Cycle(100));
        let mut b = Link::new(32.0, Cycle(100));
        assert_eq!(
            a.send(Cycle(0), 128),
            b.send_retried(Cycle(0), 128, 1.0, Cycle::ZERO, 0, Cycle::ZERO)
        );
        assert_eq!(b.retransmissions(), 0);
    }

    #[test]
    fn retried_send_charges_replays_and_backoff() {
        let mut l = Link::new(32.0, Cycle(10));
        // 128 B at 32 B/cyc = 4 cycles per attempt; 2 retries + 50 cycles
        // of timeout backoff = 3*4 + 50 = 62 occupancy, + 10 latency.
        let a = l.send_retried(Cycle(0), 128, 1.0, Cycle::ZERO, 2, Cycle(50));
        assert_eq!(a, Cycle(72));
        assert_eq!(l.retransmissions(), 2);
        assert_eq!(l.bytes_sent(), 3 * 128);
        // The replay episode holds the port: the next message queues
        // behind it, so FIFO order survives the recovery.
        let b = l.send(Cycle(0), 128);
        assert_eq!(b, Cycle(76));
        assert!(b > a - Cycle(10));
    }

    #[test]
    fn degraded_send_scales_serialization_and_adds_latency() {
        let mut a = Link::new(32.0, Cycle(100));
        let mut b = Link::new(32.0, Cycle(100));
        assert_eq!(
            a.send(Cycle(0), 128),
            b.send_degraded(Cycle(0), 128, 1.0, Cycle::ZERO)
        );
        // 128 B at 32 B/cyc, 4x slowdown = 16 cycles + 100 + 7 extra.
        assert_eq!(b.send_degraded(Cycle(100), 128, 4.0, Cycle(7)), Cycle(223));
        // FIFO still holds across degraded and normal sends: the next
        // message queues behind the slowed one (116 + 4 ser + 100).
        assert_eq!(b.send(Cycle(100), 128), Cycle(220));
    }
}
