//! Structural invariants each protocol must respect, observed through
//! run metrics on real workload traces.

use hmg::prelude::*;
use hmg::workloads::suite::by_abbrev;

fn run(p: ProtocolKind, workload: &str) -> RunMetrics {
    let spec = by_abbrev(workload).expect("known workload");
    let trace = spec.generate(Scale::Tiny, 11);
    Runner::new(Scale::Tiny).run(&trace, p)
}

#[test]
fn flat_protocols_never_hit_a_gpu_home() {
    for p in [
        ProtocolKind::NoPeerCaching,
        ProtocolKind::SwNonHier,
        ProtocolKind::Nhcc,
        ProtocolKind::CarveLike,
    ] {
        for w in ["bfs", "lstm", "CoMD"] {
            let m = run(p, w);
            assert_eq!(m.gpu_home_hits, 0, "{p}/{w}: flat routing has no GPU home");
        }
    }
}

#[test]
fn hierarchical_protocols_use_gpu_homes() {
    // Software-hierarchical coherence wipes its L2s at every kernel
    // boundary, so at tiny scale its GPU-home hits can round to zero;
    // the hardware-coherent and ideal configurations must coalesce on
    // at least one of the broadcast-heavy workloads.
    for p in [ProtocolKind::Hmg, ProtocolKind::Ideal] {
        let hits: u64 = ["lstm", "RNN_FW", "GoogLeNet", "bfs"]
            .iter()
            .map(|w| run(p, w).gpu_home_hits)
            .sum();
        assert!(hits > 0, "{p}: broadcast traffic must coalesce somewhere");
    }
}

#[test]
fn software_protocols_send_no_hardware_invalidations() {
    for p in [
        ProtocolKind::NoPeerCaching,
        ProtocolKind::SwNonHier,
        ProtocolKind::SwHier,
        ProtocolKind::Ideal,
    ] {
        for w in ["bfs", "mst", "RNN_FW"] {
            let m = run(p, w);
            assert_eq!(m.invs_from_stores, 0, "{p}/{w}");
            assert_eq!(m.invs_from_evictions, 0, "{p}/{w}");
            assert_eq!(
                m.fabric.total_bytes(hmg::interconnect::MsgClass::Inv),
                0,
                "{p}/{w}: no invalidation bytes on the wire"
            );
        }
    }
}

#[test]
fn hardware_protocols_invalidate_on_read_write_sharing() {
    for p in [
        ProtocolKind::Nhcc,
        ProtocolKind::Hmg,
        ProtocolKind::CarveLike,
    ] {
        let m = run(p, "mst");
        assert!(
            m.invs_from_stores > 0,
            "{p}: mst's conflicting updates must trigger invalidations"
        );
        assert!(m.fabric.total_bytes(hmg::interconnect::MsgClass::Inv) > 0);
    }
}

#[test]
fn hardware_protocols_do_not_bulk_invalidate_l2() {
    // HW acquires touch only the L1; software coherence wipes L2s too.
    // Compare bulk-invalidated line counts on a multi-kernel workload.
    let hw = run(ProtocolKind::Hmg, "CoMD");
    let sw = run(ProtocolKind::SwNonHier, "CoMD");
    assert!(
        sw.lines_bulk_invalidated > hw.lines_bulk_invalidated,
        "software coherence must bulk-invalidate more (sw={} hw={})",
        sw.lines_bulk_invalidated,
        hw.lines_bulk_invalidated
    );
    let ideal = run(ProtocolKind::Ideal, "CoMD");
    assert_eq!(ideal.lines_bulk_invalidated, 0, "ideal never invalidates");
}

#[test]
fn ideal_pays_release_fences_like_everyone_else() {
    let ideal = run(ProtocolKind::Ideal, "CoMD");
    assert!(ideal.fences > 0, "kernel-end drains apply to ideal too");
}

#[test]
fn write_through_reaches_dram_under_every_protocol() {
    for p in ProtocolKind::ALL {
        let m = run(p, "CoMD");
        assert!(m.dram_bytes > 0, "{p}");
        assert!(m.stores > 0, "{p}");
    }
}

#[test]
fn inter_gpu_traffic_ordering_matches_the_hierarchy_story() {
    // On a broadcast-heavy workload, hierarchical routing must not move
    // more data across GPUs than flat routing, and caching protocols
    // must not exceed the no-caching baseline.
    let data = |m: &RunMetrics| {
        m.fabric.inter_bytes(hmg::interconnect::MsgClass::Data)
            + m.fabric.inter_bytes(hmg::interconnect::MsgClass::Request)
    };
    let base = data(&run(ProtocolKind::NoPeerCaching, "RNN_FW"));
    let flat = data(&run(ProtocolKind::Nhcc, "RNN_FW"));
    let hier = data(&run(ProtocolKind::Hmg, "RNN_FW"));
    assert!(flat <= base, "caching must reduce inter-GPU traffic");
    assert!(hier <= flat, "hierarchy must reduce it further (or tie)");
}

#[test]
fn fig3_tracking_is_well_formed() {
    let spec = by_abbrev("RNN_FW").unwrap();
    let trace = spec.generate(Scale::Tiny, 11);
    let mut cfg = EngineConfig::small_test(ProtocolKind::NoPeerCaching);
    cfg.track_peer_redundancy = true;
    let m = Engine::new(cfg).run(&trace);
    assert!(
        m.inter_gpu_loads_peer_redundant <= m.inter_gpu_loads,
        "numerator bounded by denominator"
    );
    if let Some(r) = m.peer_redundancy() {
        assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn directory_stats_only_move_under_hw_protocols() {
    let sw = run(ProtocolKind::SwHier, "bfs");
    assert_eq!(sw.stores_triggering_invs, 0);
    assert_eq!(sw.evictions_triggering_invs, 0);
    let hw = run(ProtocolKind::Hmg, "bfs");
    let _ = hw; // HW may or may not evict at tiny scale; presence checked
                // in hardware_protocols_invalidate_on_read_write_sharing.
}
