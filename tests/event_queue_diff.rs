//! Differential test: the production calendar/bucket [`EventQueue`]
//! against the retained binary-heap [`ReferenceEventQueue`] oracle.
//!
//! The two implementations must agree *exactly* — same `(cycle,
//! payload)` stream, same `now()` after every pop, same length after
//! every operation — across seeded schedules that stress each calendar
//! mechanism: same-cycle FIFO ties, bursty near-future arrivals,
//! far-future timers past the ring window, and interleaved push/pop
//! patterns that force window wraps and far-list migration.
//!
//! Payloads are opaque sequence numbers, so any reordering between the
//! two queues (including a FIFO violation among same-cycle events) is
//! caught by direct comparison.

use hmg::sim::time::Cycle;
use hmg::sim::{EventQueue, ReferenceEventQueue};

/// Deterministic xorshift64* generator — keeps the schedules seeded
/// and reproducible without pulling in an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Drives both queues through the same operation stream and asserts
/// lock-step agreement. `delay` maps one RNG draw to a scheduling
/// offset, letting each scenario shape its arrival distribution.
fn run_differential(seed: u64, ops: usize, push_bias: u64, delay: impl Fn(&mut Rng) -> u64) {
    let mut rng = Rng(seed);
    let mut fast: EventQueue<u64> = EventQueue::new();
    let mut oracle: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
    let mut next_payload = 0u64;

    for _ in 0..ops {
        let push = fast.is_empty() || rng.below(10) < push_bias;
        if push {
            let at = Cycle(fast.now().0 + delay(&mut rng));
            fast.push(at, next_payload);
            oracle.push(at, next_payload);
            next_payload += 1;
        } else {
            let got = fast.pop();
            let want = oracle.pop();
            assert_eq!(got, want, "queues diverged (seed {seed})");
        }
        assert_eq!(fast.len(), oracle.len(), "length diverged (seed {seed})");
        assert_eq!(
            fast.is_empty(),
            oracle.is_empty(),
            "emptiness diverged (seed {seed})"
        );
    }

    // Drain: every remaining event must come out identically.
    loop {
        let got = fast.pop();
        let want = oracle.pop();
        assert_eq!(got, want, "drain diverged (seed {seed})");
        if got.is_none() {
            break;
        }
        assert_eq!(fast.now(), oracle.now(), "now() diverged (seed {seed})");
    }
    assert_eq!(
        fast.events_processed(),
        oracle.events_processed(),
        "pop counts diverged (seed {seed})"
    );
}

#[test]
fn near_future_bursts_match_the_reference_heap() {
    // Dense arrivals within a few hundred cycles — the common simulator
    // pattern (cache hits, fabric hops). Push-heavy to build bursts.
    for seed in [1, 42, 0xdead_beef] {
        run_differential(seed, 6000, 6, |r| r.below(300));
    }
}

#[test]
fn same_cycle_ties_preserve_fifo_order() {
    // Almost every event lands on one of the next 3 cycles, so nearly
    // all pops resolve FIFO ties. Payloads are insertion-ordered
    // sequence numbers: any tie-break mismatch fails the comparison.
    for seed in [7, 1234] {
        run_differential(seed, 5000, 5, |r| r.below(3));
    }
}

#[test]
fn far_future_timers_cross_the_ring_window() {
    // A tail of the arrivals lands far beyond the 32768-slot calendar
    // window (watchdogs, scrub timers), exercising the far list and
    // its migration back into the ring as the window advances.
    for seed in [3, 99] {
        run_differential(seed, 4000, 6, |r| {
            if r.below(10) == 0 {
                // Past the window: forces the far list.
                40_000 + r.below(200_000)
            } else {
                r.below(500)
            }
        });
    }
}

#[test]
fn pop_heavy_schedules_force_window_jumps() {
    // Pop-biased with sparse, widely spaced arrivals: the queue
    // frequently empties its ring and jumps the window straight to the
    // far-list minimum.
    for seed in [11, 0x5eed] {
        run_differential(seed, 4000, 3, |r| {
            if r.below(4) == 0 {
                33_000 + r.below(100_000)
            } else {
                r.below(50) * 701
            }
        });
    }
}

#[test]
fn mixed_regime_long_run_matches_exactly() {
    // One long schedule mixing every regime: ties, bursts, far timers,
    // and quiet stretches. The strongest single differential check.
    run_differential(0x00c0_ffee, 20_000, 5, |r| match r.below(20) {
        0 => 0,                            // same-cycle tie with `now`
        1..=2 => 50_000 + r.below(10_000), // far-future timer
        3..=6 => r.below(4),               // near-tie cluster
        _ => r.below(2_000),               // ordinary near-future event
    });
}
