//! Tier-1 table coverage: every legal row of Table I must be exercised
//! by real engine runs, and every executed transition must conform to
//! the static table (`hmg_protocol::conformance`, fed by the engine's
//! directory hooks). Run with `-- --nocapture` to see the per-row
//! coverage report.

use hmg::prelude::*;
use hmg::protocol::{DirEvent, DirState, TableConformance};
use hmg::workloads::suite::by_abbrev;

/// Runs `abbrev` under `cfg`'s machine and folds its transition coverage
/// into `total`, asserting zero conformance mismatches for the run.
fn cover(total: &mut TableConformance, cfg: EngineConfig, abbrev: &str, seed: u64) {
    let spec = by_abbrev(abbrev).expect("workload in suite");
    let trace = spec.generate(Scale::Tiny, seed);
    let m = Engine::try_new(cfg.clone())
        .expect("valid config")
        .try_run(&trace)
        .expect("run completes");
    assert_eq!(
        m.table.mismatches, 0,
        "{abbrev} under {}: a transition contradicted the static table",
        cfg.protocol
    );
    total.merge(&m.table);
}

#[test]
fn every_legal_table_row_is_exercised() {
    let mut total = TableConformance::new();

    // Sharing-heavy workloads under both protocols cover the load/store
    // columns from both stable states, and — under HMG — the
    // hierarchical Invalidation column.
    for p in ProtocolKind::ALL {
        for w in ["CoMD", "bfs", "RNN_FW"] {
            cover(&mut total, EngineConfig::small_test(p), w, 23);
        }
    }

    // A deliberately tiny directory forces capacity Replace transitions
    // (the paper's "directory is a cache" eviction path).
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let mut cfg = EngineConfig::small_test(p);
        cfg.dir = hmg::mem::DirectoryConfig::new(8, 2);
        cover(&mut total, cfg, "CoMD", 23);
    }

    println!("{}", total.report());

    let uncovered = total.uncovered_rows(true);
    assert!(
        uncovered.is_empty(),
        "legal table rows never executed by any run: {uncovered:?}\n{}",
        total.report()
    );
    assert_eq!(total.mismatches, 0);
    // The suite above must meaningfully exercise the table, not just
    // brush each row once.
    assert!(total.checked > 1_000, "only {} transitions", total.checked);
}

#[test]
fn replace_rows_come_from_the_tiny_directory() {
    // Sanity for the forcing config: with the default test directory the
    // Replace row may legitimately never fire, with the tiny one it must.
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.dir = hmg::mem::DirectoryConfig::new(8, 2);
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 23);
    let m = Engine::try_new(cfg)
        .expect("valid config")
        .try_run(&trace)
        .expect("run completes");
    let idx = hmg::protocol::row_index(DirState::Valid, DirEvent::Replace);
    assert!(
        m.table.rows[idx] > 0,
        "an 8x2 directory under CoMD must evict:\n{}",
        m.table.report()
    );
    assert_eq!(m.table.mismatches, 0);
}

#[test]
fn nhcc_runs_never_touch_the_invalidation_column() {
    // Flat NHCC homes must never execute the HMG-only hierarchical
    // invalidation rows — the conformance hooks would flag them as
    // undefined cells, and coverage must show them at zero.
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 23);
    let m = Engine::try_new(EngineConfig::small_test(ProtocolKind::Nhcc))
        .expect("valid config")
        .try_run(&trace)
        .expect("run completes");
    for s in DirState::ALL {
        let idx = hmg::protocol::row_index(s, DirEvent::Invalidation);
        assert_eq!(m.table.rows[idx], 0, "{s:?} x Invalidation under NHCC");
    }
    assert_eq!(m.table.mismatches, 0);
}
