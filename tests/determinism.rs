//! Whole-stack determinism: identical seeds must reproduce identical
//! simulations bit-for-bit, across every protocol — the property that
//! makes every figure in EXPERIMENTS.md reproducible.

use hmg::prelude::*;
use hmg::workloads::suite::by_abbrev;

fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.total_cycles.as_u64(),
        m.events,
        m.loads,
        m.stores,
        m.invs_from_stores + m.invs_from_evictions,
        m.fabric.inter_bytes(hmg::interconnect::MsgClass::Data),
    )
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let spec = by_abbrev("bfs").expect("bfs in suite");
    for p in ProtocolKind::ALL {
        let t1 = spec.generate(Scale::Tiny, 99);
        let t2 = spec.generate(Scale::Tiny, 99);
        assert_eq!(t1, t2, "trace generation must be deterministic");
        let mut r = Runner::new(Scale::Tiny);
        let a = r.run(&t1, p);
        let b = r.run(&t2, p);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{p}");
    }
}

#[test]
fn state_digest_is_seed_stable_across_protocols() {
    // Guards the ordered-map conversions in sim state (engine MSHRs,
    // carve/flag/touch maps, fabric sequence numbers, page homes): a
    // same-seed re-run must reproduce the committed-memory digest and
    // the per-row directory-transition coverage bit for bit, and no
    // executed transition may contradict the static Table I.
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 23);
    let mut r = Runner::new(Scale::Tiny);
    for p in ProtocolKind::ALL {
        let a = r.run(&trace, p);
        let b = r.run(&trace, p);
        assert_eq!(a.state_digest, b.state_digest, "{p}: memory state");
        assert_eq!(a.table, b.table, "{p}: transition coverage");
        assert_eq!(a.table.mismatches, 0, "{p}: table conformance");
    }
}

#[test]
fn different_seeds_differ() {
    let spec = by_abbrev("bfs").expect("bfs in suite");
    let t1 = spec.generate(Scale::Tiny, 1);
    let t2 = spec.generate(Scale::Tiny, 2);
    assert_ne!(t1, t2, "different seeds must change the trace");
}

#[test]
fn every_workload_is_deterministic_under_hmg() {
    let mut r = Runner::new(Scale::Tiny);
    for spec in hmg::workloads::suite::table3() {
        let trace = spec.generate(Scale::Tiny, 5);
        let a = r.run(&trace, ProtocolKind::Hmg);
        let b = r.run(&trace, ProtocolKind::Hmg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} must be deterministic",
            spec.abbrev
        );
    }
}

#[test]
fn identical_fault_plans_reproduce_identical_runs() {
    // The probabilistic faults (delay, duplication) draw from a fault
    // RNG seeded by the plan, in deterministic event order: the same
    // seed and plan must reproduce the run bit-for-bit.
    let spec = by_abbrev("bfs").expect("bfs in suite");
    let trace = spec.generate(Scale::Tiny, 17);
    let plan =
        FaultPlan::parse("delay=0.35/140,dup=0.35,flag-delay=60,degrade=500..40000/2.5,seed=77")
            .expect("valid plan");
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let run = || {
            let mut cfg = EngineConfig::small_test(p);
            cfg.faults = plan.clone();
            Engine::try_new(cfg)
                .expect("valid config")
                .try_run(&trace)
                .expect("faulty-but-tolerated run completes")
        };
        let a = run();
        let b = run();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{p}: same seed + same plan"
        );
    }
}

#[test]
fn fault_seed_changes_faulty_timings() {
    // CoMD's tiny trace forwards plenty of stores across GPMs, so the
    // delay fault has messages to pick from.
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 17);
    let run = |seed: u64| {
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.faults = FaultPlan::parse(&format!("delay=0.5/400,seed={seed}")).unwrap();
        Engine::try_new(cfg).unwrap().try_run(&trace).unwrap()
    };
    // Different fault seeds pick different messages to delay; at 50%
    // probability with a large penalty the total time must move.
    assert_ne!(
        run(1).total_cycles,
        run(2).total_cycles,
        "fault RNG must be driven by the plan seed"
    );
}

#[test]
fn soft_error_sweeps_are_seed_stable() {
    // Corruption injection (flip-msg / flip-line / flip-dir) draws from
    // the same salted fault-RNG streams as the other probabilistic
    // faults: a same-seed re-run must reproduce the run — including
    // every IntegrityStats counter and the committed-memory digest —
    // bit for bit. And with double-bit faults disabled every flip is
    // correctable in place, so the digest must also equal the
    // fault-free run's: recovery leaves no trace in memory state.
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 17);
    let plan = FaultPlan::parse("flip-msg=0.05,flip-line=0.6,flip-dir=0.6,seed=21").expect("plan");
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let run = |faults: FaultPlan| {
            let mut cfg = EngineConfig::small_test(p);
            cfg.ecc_double_bit_fraction = 0.0;
            cfg.faults = faults;
            Engine::try_new(cfg)
                .expect("valid config")
                .try_run(&trace)
                .expect("corruption is recovered, not fatal")
        };
        let clean = run(FaultPlan::default());
        let a = run(plan.clone());
        let b = run(plan.clone());
        assert_eq!(fingerprint(&a), fingerprint(&b), "{p}: same seed + plan");
        assert_eq!(a.integrity, b.integrity, "{p}: integrity counters");
        assert_eq!(a.state_digest, b.state_digest, "{p}: memory state");
        assert!(a.integrity.flips() > 0, "{p}: the plan must inject");
        assert_eq!(a.integrity.silent_corruptions, 0, "{p}: nothing silent");
        assert_eq!(
            a.state_digest, clean.state_digest,
            "{p}: correctable-only recovery must not perturb memory"
        );
    }
}

#[test]
fn keep_going_sweeps_are_deterministic() {
    use hmg::experiments::{fig8, ExpOptions};
    let opts = ExpOptions {
        scale: Scale::Tiny,
        seed: 4,
        filter: Some(vec!["CoMD".into(), "bfs".into()]),
        faults: Some(FaultPlan::parse("delay=0.2/90,dup=0.2,seed=5").unwrap()),
        keep_going: true,
        ..ExpOptions::default()
    };
    let a = fig8(&opts).expect("keep-going sweep yields a partial report");
    let b = fig8(&opts).expect("keep-going sweep yields a partial report");
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.workloads, b.workloads);
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn experiment_drivers_are_deterministic() {
    use hmg::experiments::{fig8, ExpOptions};
    let opts = ExpOptions {
        scale: Scale::Tiny,
        seed: 3,
        filter: Some(vec!["CoMD".into(), "bfs".into()]),
        ..ExpOptions::default()
    };
    let a = fig8(&opts).expect("fig8");
    let b = fig8(&opts).expect("fig8");
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.geomeans, b.geomeans);
}

#[test]
fn gpm_offline_reconfiguration_is_deterministic() {
    // A permanent mid-run GPM loss triggers the full reconfiguration
    // path — CTA aborts, page re-homing, directory rebuild, conservative
    // scrub. All of it must be a pure function of (trace, plan): two
    // runs agree on the final memory digest and on every ReconfigStats
    // counter, bit for bit.
    let spec = by_abbrev("CoMD").expect("CoMD in suite");
    let trace = spec.generate(Scale::Tiny, 17);
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let run = || {
            let mut cfg = EngineConfig::small_test(p);
            cfg.faults = FaultPlan::parse("gpm-offline=1.1@1000").expect("valid plan");
            Engine::try_new(cfg)
                .expect("valid config")
                .try_run(&trace)
                .expect("the survivors complete the run")
        };
        let a = run();
        let b = run();
        assert_eq!(fingerprint(&a), fingerprint(&b), "{p}");
        assert_eq!(a.state_digest, b.state_digest, "{p}: memory state");
        assert_eq!(a.reconfig, b.reconfig, "{p}: reconfiguration counters");
        assert_eq!(a.reconfig.epochs, 1, "{p}: the fault must activate");
    }
}

#[test]
fn faulty_sweeps_resume_deterministically_from_a_checkpoint() {
    // `--faults gpm-offline=... --checkpoint F` then `--resume`: the
    // resumed sweep reuses completed cells and must reproduce the fresh
    // sweep's numbers exactly.
    use hmg::experiments::{fig8, ExpOptions};
    let ckpt = std::env::temp_dir().join(format!("hmg-fip-ckpt-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let mk = |checkpoint: Option<std::path::PathBuf>, resume: bool| ExpOptions {
        scale: Scale::Tiny,
        seed: 4,
        filter: Some(vec!["CoMD".into(), "bfs".into()]),
        faults: Some(FaultPlan::parse("gpm-offline=0.1@1000").unwrap()),
        checkpoint,
        resume,
        ..ExpOptions::default()
    };
    let fresh = fig8(&mk(None, false)).expect("fresh sweep");
    let first = fig8(&mk(Some(ckpt.clone()), false)).expect("checkpointed sweep");
    let resumed = fig8(&mk(Some(ckpt.clone()), true)).expect("resumed sweep");
    let _ = std::fs::remove_file(&ckpt);
    assert_eq!(fresh.rows, first.rows);
    assert_eq!(first.rows, resumed.rows, "resume must not change results");
    assert_eq!(first.geomeans, resumed.geomeans);
}
