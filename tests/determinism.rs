//! Whole-stack determinism: identical seeds must reproduce identical
//! simulations bit-for-bit, across every protocol — the property that
//! makes every figure in EXPERIMENTS.md reproducible.

use hmg::prelude::*;
use hmg::workloads::suite::by_abbrev;

fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.total_cycles.as_u64(),
        m.events,
        m.loads,
        m.stores,
        m.invs_from_stores + m.invs_from_evictions,
        m.fabric.inter_bytes(hmg::interconnect::MsgClass::Data),
    )
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let spec = by_abbrev("bfs").expect("bfs in suite");
    for p in ProtocolKind::ALL {
        let t1 = spec.generate(Scale::Tiny, 99);
        let t2 = spec.generate(Scale::Tiny, 99);
        assert_eq!(t1, t2, "trace generation must be deterministic");
        let mut r = Runner::new(Scale::Tiny);
        let a = r.run(&t1, p);
        let b = r.run(&t2, p);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{p}");
    }
}

#[test]
fn different_seeds_differ() {
    let spec = by_abbrev("bfs").expect("bfs in suite");
    let t1 = spec.generate(Scale::Tiny, 1);
    let t2 = spec.generate(Scale::Tiny, 2);
    assert_ne!(t1, t2, "different seeds must change the trace");
}

#[test]
fn every_workload_is_deterministic_under_hmg() {
    let mut r = Runner::new(Scale::Tiny);
    for spec in hmg::workloads::suite::table3() {
        let trace = spec.generate(Scale::Tiny, 5);
        let a = r.run(&trace, ProtocolKind::Hmg);
        let b = r.run(&trace, ProtocolKind::Hmg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} must be deterministic",
            spec.abbrev
        );
    }
}

#[test]
fn experiment_drivers_are_deterministic() {
    use hmg::experiments::{fig8, ExpOptions};
    let opts = ExpOptions {
        scale: Scale::Tiny,
        seed: 3,
        filter: Some(vec!["CoMD".into(), "bfs".into()]),
    };
    let a = fig8(&opts);
    let b = fig8(&opts);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.geomeans, b.geomeans);
}
