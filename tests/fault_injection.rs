//! Adversarial fault-injection validation (DESIGN.md "Robustness").
//!
//! Every fault class the [`FaultPlan`] can inject must be either
//! *tolerated* — the litmus outcome is identical to a fault-free run —
//! or *detected* — the run terminates with a typed diagnostic (deadlock
//! watchdog) or the version oracle exposes the stale read. No injected
//! fault may hang the simulator.
//!
//! | fault class              | expected outcome                       |
//! |--------------------------|----------------------------------------|
//! | link degrade / stall     | tolerated (timing-only)                |
//! | message delay            | tolerated (FIFO per port preserved)    |
//! | message duplication      | tolerated (idempotent re-delivery)     |
//! | flag-propagation delay   | tolerated (waiters just wake later)    |
//! | message drop             | recovered: transport retransmission    |
//! | dropped store            | detected: structural deadlock + dump   |
//! | reordered invalidation   | detected: version oracle reads stale   |
//! | in-flight message flip   | recovered: checksum + retransmission   |
//! | resident L2-line flip    | recovered: ECC correct/refetch, or     |
//! |                          | contained: poison + CTA abort (dirty)  |
//! | directory-entry flip     | recovered: ECC correct or rebuild as   |
//! |                          | sticky-broadcast                       |

use hmg::prelude::*;
use hmg_mem::Addr;
use hmg_protocol::{Access, Cta, Kernel, TraceOp, WorkloadTrace};

fn ld(addr: u64) -> TraceOp {
    TraceOp::Access(Access::load(Addr(addr)))
}

fn st(addr: u64) -> TraceOp {
    TraceOp::Access(Access::store(Addr(addr)))
}

/// One CTA per GPM of the `small_test` 2-GPU x 2-GPM machine.
fn kernel_per_gpm(mut ops: Vec<Vec<TraceOp>>) -> Kernel {
    ops.resize(4, Vec::new());
    Kernel::new(ops.into_iter().map(Cta::new).collect())
}

/// The Section III-B message-passing pattern with a stale copy warmed
/// into the consumer's caches: line homed at GPM0, consumer on GPM1
/// (same GPU as the home), producer on GPM2 (the other GPU, so its
/// store must be forwarded across the fabric — the path the drop-store
/// fault targets). Flag 1 orders the consumer's warm read before the
/// producer's store.
fn mp_stale_trace() -> WorkloadTrace {
    let producer = vec![
        TraceOp::WaitFlag { flag: 1, count: 1 },
        st(0),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(3),
    ];
    let consumer = vec![
        ld(0),                // warm a stale copy before synchronizing
        TraceOp::Delay(5000), // let the warm load complete and fill the L2
        TraceOp::SetFlag(1),
        TraceOp::WaitFlag { flag: 3, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    WorkloadTrace::new(
        "mp-stale-faults",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            kernel_per_gpm(vec![vec![], consumer, producer, vec![]]), // version 2
        ],
    )
}

fn run_probed_with_faults(
    p: ProtocolKind,
    trace: &WorkloadTrace,
    faults: FaultPlan,
) -> Result<RunMetrics, SimError> {
    let mut cfg = EngineConfig::small_test(p);
    cfg.probe_line = Some(0);
    cfg.faults = faults;
    Engine::try_new(cfg)?.try_run(trace)
}

// ---------------------------------------------------------------------
// Tolerated faults: litmus outcomes must be identical to fault-free.
// ---------------------------------------------------------------------

#[test]
fn tolerated_faults_leave_litmus_outcomes_unchanged() {
    let trace = mp_stale_trace();
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("delay", FaultPlan::parse("delay=1.0/200,seed=7").unwrap()),
        ("dup", FaultPlan::parse("dup=1.0,seed=7").unwrap()),
        (
            "delay+dup",
            FaultPlan::parse("delay=0.5/120,dup=0.5,seed=11").unwrap(),
        ),
        ("flag-delay", FaultPlan::parse("flag-delay=500").unwrap()),
        (
            "degrade",
            FaultPlan::parse("degrade=0..1000000/8.0").unwrap(),
        ),
        ("stall", FaultPlan::parse("stall=0..1000000/300").unwrap()),
        (
            "all-tolerated",
            FaultPlan::parse(
                "delay=0.3/90,dup=0.3,flag-delay=250,\
                 degrade=100..500000/3.5,stall=200..400000/60,seed=42",
            )
            .unwrap(),
        ),
    ];
    for p in [
        ProtocolKind::Hmg,
        ProtocolKind::Nhcc,
        ProtocolKind::CarveLike,
    ] {
        let clean = run_probed_with_faults(p, &trace, FaultPlan::default())
            .expect("fault-free run completes");
        let want = clean.probe.last().expect("consumer read").1;
        assert_eq!(want, 2, "{p}: sanity — fault-free consumer sees the store");
        for (name, plan) in &plans {
            let m = run_probed_with_faults(p, &trace, plan.clone())
                .unwrap_or_else(|e| panic!("{p}/{name}: must be tolerated, got {e}"));
            assert_eq!(
                m.probe.last().expect("consumer read").1,
                want,
                "{p}/{name}: tolerated fault changed the litmus outcome"
            );
        }
    }
}

#[test]
fn link_degradation_slows_but_preserves_results() {
    let trace = mp_stale_trace();
    let clean = run_probed_with_faults(ProtocolKind::Hmg, &trace, FaultPlan::default()).unwrap();
    let slow = run_probed_with_faults(
        ProtocolKind::Hmg,
        &trace,
        FaultPlan::parse("degrade=0..10000000/16.0,stall=0..10000000/500").unwrap(),
    )
    .unwrap();
    assert!(
        slow.total_cycles > clean.total_cycles,
        "degraded links must cost cycles ({} vs {})",
        slow.total_cycles.as_u64(),
        clean.total_cycles.as_u64()
    );
    assert_eq!(slow.probe.last().unwrap().1, clean.probe.last().unwrap().1);
}

// ---------------------------------------------------------------------
// Recovered faults: lost messages are replayed by the reliable-delivery
// transport; the run slows down but converges to the fault-free final
// memory state (ISSUE acceptance: drop <= 0.01 matches fault-free).
// ---------------------------------------------------------------------

#[test]
fn dropped_messages_recover_to_the_fault_free_final_state() {
    let trace = mp_stale_trace();
    for p in [
        ProtocolKind::Hmg,
        ProtocolKind::Nhcc,
        ProtocolKind::CarveLike,
    ] {
        let clean = run_probed_with_faults(p, &trace, FaultPlan::default())
            .expect("fault-free run completes");
        for spec in ["drop=0.01,seed=3", "drop=0.5,seed=3"] {
            let m = run_probed_with_faults(p, &trace, FaultPlan::parse(spec).unwrap())
                .unwrap_or_else(|e| panic!("{p}/{spec}: must be recovered, got {e}"));
            assert_eq!(
                m.state_digest, clean.state_digest,
                "{p}/{spec}: recovery must converge to the fault-free memory state"
            );
            assert_eq!(
                m.probe.last().expect("consumer read").1,
                clean.probe.last().unwrap().1,
                "{p}/{spec}: litmus outcome must survive message loss"
            );
        }
        // At 50% loss the transport must visibly do work: replayed
        // attempts show up in the stats and cost simulated time.
        let heavy = run_probed_with_faults(p, &trace, FaultPlan::parse("drop=0.5,seed=3").unwrap())
            .unwrap();
        let t = heavy.fabric.transport();
        assert!(t.retransmissions > 0, "{p}: 50% loss must force replays");
        assert!(t.recovered > 0 && t.recovered <= t.retransmissions, "{p}");
        assert!(
            heavy.total_cycles > clean.total_cycles,
            "{p}: retransmission backoff must cost cycles ({} vs {})",
            heavy.total_cycles.as_u64(),
            clean.total_cycles.as_u64()
        );
    }
}

#[test]
fn retransmission_schedule_is_deterministic() {
    let trace = mp_stale_trace();
    let plan = FaultPlan::parse("drop=0.4,seed=21").unwrap();
    let a = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan.clone()).unwrap();
    let b = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan).unwrap();
    assert!(
        a.fabric.transport().retransmissions > 0,
        "plan must exercise the transport"
    );
    assert_eq!(
        a.total_cycles, b.total_cycles,
        "same seed + plan => same schedule"
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.fabric.transport(), b.fabric.transport());
    assert_eq!(a.probe, b.probe);
    assert_eq!(a.state_digest, b.state_digest);
}

// ---------------------------------------------------------------------
// Graceful degradation: sharer-list overflow falls back to broadcast
// invalidation without ever letting a stale copy survive a store.
// ---------------------------------------------------------------------

#[test]
fn sharer_overflow_broadcast_preserves_litmus_outcome() {
    // Every GPM warms line 0 (overflowing a cap-1 directory entry),
    // then GPM0 stores, then every GPM reads back. The readbacks must
    // all observe the new version: the degraded entry has to reach the
    // stale copies via the conservative broadcast target list.
    let warm_all = || kernel_per_gpm(vec![vec![ld(0)], vec![ld(0)], vec![ld(0)], vec![ld(0)]]);
    let trace = WorkloadTrace::new(
        "overflow-bcast",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            warm_all(),
            kernel_per_gpm(vec![vec![st(0)]]), // version 2
            warm_all(),
        ],
    );
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let precise = run_probed_with_faults(p, &trace, FaultPlan::default())
            .expect("uncapped run completes");
        let mut cfg = EngineConfig::small_test(p);
        cfg.probe_line = Some(0);
        cfg.dir = cfg.dir.with_max_sharers(1);
        let capped = Engine::try_new(cfg)
            .unwrap()
            .try_run(&trace)
            .expect("capped run completes");
        assert!(
            capped.dir_broadcast_fallbacks >= 1,
            "{p}: four sharers must overflow a cap of one"
        );
        assert!(
            capped.broadcast_invs >= 1,
            "{p}: the store must invalidate via the broadcast path"
        );
        let last4 = |m: &RunMetrics| {
            m.probe[m.probe.len() - 4..]
                .iter()
                .map(|&(_, v)| v)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            last4(&capped),
            vec![2, 2, 2, 2],
            "{p}: no stale copy may survive"
        );
        assert_eq!(last4(&precise), last4(&capped), "{p}");
        assert_eq!(
            precise.state_digest, capped.state_digest,
            "{p}: degradation must not change the final memory state"
        );
    }
}

// ---------------------------------------------------------------------
// Detected faults: dropped store => structural deadlock with diagnostic.
// ---------------------------------------------------------------------

#[test]
fn dropped_store_is_detected_as_deadlock_not_hang() {
    let trace = mp_stale_trace();
    let plan = FaultPlan::parse("drop-store=1").unwrap();
    let err = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan)
        .expect_err("a dropped release-fenced store must deadlock the fence drain");
    assert_eq!(err.kind, SimErrorKind::Deadlock);
    assert!(
        err.cycle.is_some(),
        "diagnostic must carry the cycle: {err}"
    );
    assert!(
        err.agent.is_some(),
        "diagnostic must name the stuck agent: {err}"
    );
    let text = err.to_string();
    assert!(text.contains("deadlocked"), "missing kind in: {text}");
    assert!(
        err.dump.is_some(),
        "diagnostic must include the machine-state dump"
    );
    let dump = err.dump.as_deref().unwrap();
    assert!(
        dump.contains("pending") || dump.contains("outstanding"),
        "dump must show per-agent outstanding work:\n{dump}"
    );
}

#[test]
fn dropped_store_is_detected_under_every_hw_protocol() {
    let trace = mp_stale_trace();
    for p in [
        ProtocolKind::Nhcc,
        ProtocolKind::Hmg,
        ProtocolKind::CarveLike,
    ] {
        let plan = FaultPlan::parse("drop-store=1").unwrap();
        let err = run_probed_with_faults(p, &trace, plan)
            .expect_err("dropped fenced store must be detected");
        assert_eq!(err.kind, SimErrorKind::Deadlock, "{p}");
    }
}

// ---------------------------------------------------------------------
// Detected faults: reordered invalidation (FIFO violation) => the
// version oracle observes the stale read; the run still terminates.
// ---------------------------------------------------------------------

#[test]
fn reordered_invalidation_is_exposed_by_the_version_oracle() {
    // Consumer on GPM1 shares GPU0 with the producer on GPM0 and warms
    // line 0 into its local L2 slice before synchronizing. HMG's
    // acquire only flushes the L1, so if the store's invalidation is
    // reordered past the release fence (not counted, delivered late),
    // the post-acquire CTA-scope load legally hits the stale local-L2
    // copy — and the probe records the old version.
    let producer = vec![
        TraceOp::WaitFlag { flag: 1, count: 1 },
        st(0),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(2),
    ];
    let consumer = vec![
        ld(0),                // warm version 0 into GPM1's L1+L2
        TraceOp::Delay(5000), // drain the load so GPM1 registers as sharer
        TraceOp::SetFlag(1),
        TraceOp::WaitFlag { flag: 2, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "reorder-inv",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]), // home line 0 at GPM0
            kernel_per_gpm(vec![producer, consumer, vec![], vec![]]),
        ],
    );
    let clean = run_probed_with_faults(ProtocolKind::Hmg, &trace, FaultPlan::default())
        .expect("clean run completes");
    assert_eq!(
        clean.probe.last().expect("consumer read").1,
        1,
        "sanity: without the fault the consumer sees the store"
    );
    let plan = FaultPlan::parse("reorder-inv=1/2000000").unwrap();
    let m = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan)
        .expect("FIFO violation terminates (detected, not hung)");
    assert_eq!(
        m.probe.last().expect("consumer read").1,
        0,
        "the reordered invalidation must leave the stale copy visible \
         (this is precisely the ordering HMG's correctness depends on)"
    );
}

// ---------------------------------------------------------------------
// Watchdog: the livelock budget fires with a typed diagnostic.
// ---------------------------------------------------------------------

#[test]
fn livelock_watchdog_fires_on_budget_exhaustion() {
    let trace = mp_stale_trace();
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    // Launch overhead alone (100 cycles) exceeds this budget, so the
    // watchdog must trip before the first access retires.
    cfg.livelock_budget = Some(10);
    let err = Engine::try_new(cfg)
        .unwrap()
        .try_run(&trace)
        .expect_err("budget of 10 cycles cannot cover kernel launch");
    assert_eq!(err.kind, SimErrorKind::Livelock);
    assert!(err.to_string().contains("livelocked"));
    assert!(err.cycle.is_some());
}

#[test]
fn generous_livelock_budget_does_not_misfire() {
    let trace = mp_stale_trace();
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.probe_line = Some(0);
    cfg.livelock_budget = Some(1_000_000);
    let m = Engine::try_new(cfg)
        .unwrap()
        .try_run(&trace)
        .expect("completes");
    assert_eq!(m.probe.last().unwrap().1, 2);
}

// ---------------------------------------------------------------------
// Determinism: same seed + same plan => bit-identical faulty runs.
// ---------------------------------------------------------------------

#[test]
fn fault_injection_is_deterministic() {
    let trace = mp_stale_trace();
    let plan = FaultPlan::parse("delay=0.4/150,dup=0.4,seed=123").unwrap();
    let a = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan.clone()).unwrap();
    let b = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan).unwrap();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.events, b.events);
    assert_eq!(a.probe, b.probe);
}

// ---------------------------------------------------------------------
// Graceful degradation: a keep-going sweep over the whole Table III
// suite with a deliberately lethal fault completes with a partial
// report naming the failures.
// ---------------------------------------------------------------------

#[test]
fn keep_going_sweep_yields_partial_report_with_failure_table() {
    use hmg::experiments::{speedup_suite, ExpOptions};
    use hmg::workloads::Scale;
    // Dropping the 40th forwarded store deadlocks only the workloads
    // whose tiny traces forward that many stores — a genuinely partial
    // outcome: some of the 20 workloads survive, the rest are reported.
    let opts = ExpOptions {
        scale: Scale::Tiny,
        seed: 9,
        filter: None,
        faults: Some(FaultPlan::parse("drop-store=40").unwrap()),
        keep_going: true,
        ..ExpOptions::default()
    };
    let r = speedup_suite(&opts, &[ProtocolKind::Hmg], "").expect("keep-going sweep");
    assert!(
        !r.failures.is_empty(),
        "the lethal fault must fail at least one workload"
    );
    assert!(
        !r.workloads.is_empty(),
        "the report must be partial, not empty: some workloads survive"
    );
    assert_eq!(
        r.workloads.len() + {
            let mut failed: Vec<&str> = r.failures.iter().map(|f| f.workload.as_str()).collect();
            failed.dedup();
            failed.len()
        },
        20,
        "every Table III workload is either reported or failed"
    );
    for f in &r.failures {
        assert_eq!(f.error.kind, SimErrorKind::Deadlock, "{}", f.workload);
        assert!(
            f.error.cycle.is_some(),
            "{}: failure must carry cycle context",
            f.workload
        );
    }
    // Surviving rows are well-formed speedups.
    for row in &r.rows {
        assert_eq!(row.len(), 1);
        assert!(row[0].is_finite() && row[0] > 0.0);
    }
}

// ---------------------------------------------------------------------
// Fail-in-place (DESIGN.md §9): permanent link/GPM/GPU failures are
// survived by epoch-based reconfiguration. Link losses are *tolerated*
// (second-tier detour, identical final state); component losses are
// *degraded* (CTAs abort, pages re-home, survivors finish with every
// store committed).
// ---------------------------------------------------------------------

#[test]
fn permanent_link_loss_detours_and_preserves_the_litmus_outcome() {
    // The consumer (GPM1) talks to the home (GPM0) over the first-tier
    // link that dies mid-run: every message detours over the
    // second-tier switch path and the MP litmus outcome is unchanged.
    let trace = mp_stale_trace();
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let clean = run_probed_with_faults(p, &trace, FaultPlan::default()).unwrap();
        let m = run_probed_with_faults(p, &trace, FaultPlan::parse("link-down=0-1@500").unwrap())
            .unwrap_or_else(|e| panic!("{p}: a link loss must be tolerated, got {e}"));
        assert_eq!(m.reconfig.epochs, 1, "{p}: the loss opens one epoch");
        assert!(m.reconfig.downtime_cycles > 0, "{p}: detection is charged");
        assert!(
            m.fabric.transport().reroutes > 0,
            "{p}: traffic must detour over the second tier"
        );
        assert_eq!(
            m.probe.last().unwrap().1,
            clean.probe.last().unwrap().1,
            "{p}: the detour must not change the litmus outcome"
        );
        assert_eq!(m.state_digest, clean.state_digest, "{p}: memory state");
    }
}

#[test]
fn gpu_offline_mid_run_completes_with_survivor_memory_intact() {
    // The ISSUE acceptance run: GPU1 dies mid-run with the deadlock
    // watchdog armed. The run must complete (no hang, no watchdog
    // abort), report a reconfiguration epoch with re-homed state and
    // non-zero downtime, and — because the dead GPU only ever loaded —
    // the final committed memory must be byte-identical to the
    // fault-free run.
    let far = 4u64 << 20; // 2 MB page first-touched (homed) by GPM2/GPU1
    let trace = WorkloadTrace::new(
        "gpu-off-acceptance",
        vec![
            kernel_per_gpm(vec![
                vec![st(0), st(128)],
                vec![],
                vec![ld(far), ld(far + 128)],
                vec![ld(0)],
            ]),
            kernel_per_gpm(vec![
                vec![TraceOp::Delay(60_000), st(0), st(far)],
                vec![ld(0)],
                vec![ld(far), TraceOp::Delay(60_000), ld(far)],
                vec![ld(0), TraceOp::Delay(60_000), ld(0)],
            ]),
            // Started after the loss: CTAs redistribute over GPU0 and
            // the degraded page stays readable and writable.
            kernel_per_gpm(vec![
                vec![st(far)],
                vec![ld(far)],
                vec![ld(0)],
                vec![ld(far)],
            ]),
        ],
    );
    let run = |faults: FaultPlan| {
        let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
        cfg.livelock_budget = Some(100_000);
        cfg.faults = faults;
        Engine::try_new(cfg).unwrap().try_run(&trace)
    };
    let clean = run(FaultPlan::default()).expect("fault-free run completes");
    let m = run(FaultPlan::parse("gpu-offline=1@30000").unwrap())
        .expect("survivors must finish without deadlock or watchdog abort");
    assert_eq!(m.reconfig.epochs, 1);
    assert!(m.reconfig.rehomed_pages >= 1, "GPU1's page must re-home");
    assert!(m.reconfig.rehomed_blocks >= 1, "GPM2 tracked `far` blocks");
    assert!(m.reconfig.degraded_pages >= 1, "re-homed pages degrade");
    assert!(m.reconfig.downtime_cycles > 0, "detection window charged");
    assert_eq!(
        m.state_digest, clean.state_digest,
        "a dead GPU that only loaded must not change committed memory"
    );
}

// ---------------------------------------------------------------------
// Data integrity (DESIGN.md §12): soft errors on all three surfaces are
// detected and recovered or contained — never consumed silently — and
// the IntegrityStats books balance: every injected flip retires through
// exactly one of retransmit / correct / refetch / rebuild / poison.
// ---------------------------------------------------------------------

#[test]
fn soft_error_conservation_every_flip_is_accounted() {
    let trace = mp_stale_trace();
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let m = run_probed_with_faults(
            p,
            &trace,
            FaultPlan::parse("flip-msg=0.05,flip-line=0.8,flip-dir=0.8,seed=17").unwrap(),
        )
        .unwrap_or_else(|e| panic!("{p}: the storm must be survived, got {e}"));
        assert!(m.integrity.flips() > 0, "{p}: the storm must inject");
        assert_eq!(m.integrity.silent_corruptions, 0, "{p}: {}", m.integrity);
        assert_eq!(
            m.integrity.flips(),
            m.integrity.accounted(),
            "{p}: conservation violated: {}",
            m.integrity
        );
        // The litmus outcome survives the storm.
        assert_eq!(m.probe.last().expect("consumer read").1, 2, "{p}");
    }
}

#[test]
fn soft_error_recovery_is_deterministic() {
    let trace = mp_stale_trace();
    let plan = FaultPlan::parse("flip-msg=0.05,flip-line=0.6,flip-dir=0.6,seed=33").unwrap();
    let a = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan.clone()).unwrap();
    let b = run_probed_with_faults(ProtocolKind::Hmg, &trace, plan).unwrap();
    assert!(a.integrity.flips() > 0, "plan must exercise injection");
    assert_eq!(a.integrity, b.integrity, "same seed => same recovery");
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.probe, b.probe);
    assert_eq!(a.state_digest, b.state_digest);
}

#[test]
fn checksums_off_message_flips_go_silent() {
    // The adversarial control: with checksum verification disabled the
    // same flip stream is consumed without detection — proving the
    // checksums are what detects it, not an accident of the protocol.
    let trace = mp_stale_trace();
    let plan = FaultPlan::parse("flip-msg=0.1,seed=17").unwrap();
    let detected =
        run_probed_with_faults(ProtocolKind::Hmg, &trace, plan.clone()).expect("recovered run");
    assert!(detected.integrity.flips_msg > 0);
    assert!(detected.integrity.checksum_retransmits > 0);
    assert_eq!(detected.integrity.silent_corruptions, 0);
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.probe_line = Some(0);
    cfg.checksums = false;
    cfg.faults = plan;
    let silent = Engine::try_new(cfg).unwrap().try_run(&trace).unwrap();
    assert!(
        silent.integrity.silent_corruptions > 0,
        "without checksums the flips must be consumed silently: {}",
        silent.integrity
    );
    assert_eq!(silent.integrity.checksum_retransmits, 0);
}

#[test]
fn ecc_off_line_flips_corrupt_observably() {
    // The ISSUE acceptance control: ECC disabled, one resident-line
    // flip between the consumer's warm fill and its re-read. The
    // corrupted copy is served as-is — the probe records a version with
    // the flipped bit — and the run self-reports the silent corruption.
    let consumer = vec![
        ld(0), // warm version 1 into GPM1's L2
        TraceOp::Delay(600),
        TraceOp::Acquire(Scope::Cta), // drop the L1 copy, keep the L2 copy
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "ecc-off",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            kernel_per_gpm(vec![vec![], consumer, vec![], vec![]]),
        ],
    );
    let clean = run_probed_with_faults(ProtocolKind::Hmg, &trace, FaultPlan::default()).unwrap();
    assert_eq!(clean.probe.last().unwrap().1, 1, "sanity: clean re-read");
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.probe_line = Some(0);
    cfg.ecc = hmg_gpu::EccMode::None;
    cfg.faults = FaultPlan::parse("flip-line=1.0,seed=3").unwrap();
    let m = Engine::try_new(cfg).unwrap().try_run(&trace).unwrap();
    assert!(m.integrity.silent_corruptions > 0, "{}", m.integrity);
    let observed = m.probe.last().expect("consumer re-read").1;
    assert_ne!(
        observed, 1,
        "without ECC the corrupted copy must be served as-is"
    );
    // With ECC at its default (SEC-DED), the identical flip stream is
    // fully recovered and the probe matches the clean run.
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.probe_line = Some(0);
    cfg.faults = FaultPlan::parse("flip-line=1.0,seed=3").unwrap();
    let recovered = Engine::try_new(cfg).unwrap().try_run(&trace).unwrap();
    assert_eq!(recovered.integrity.silent_corruptions, 0);
    assert_eq!(
        recovered.probe, clean.probe,
        "ECC must make flips invisible"
    );
}

#[test]
fn uncorrectable_dirty_line_poisons_and_aborts_the_cta() {
    // Write-back keeps the only copy of the store in the local L2; an
    // uncorrectable flip there is unrecoverable. Serving it must poison
    // the response and abort the consuming CTA — never hand out the
    // corrupt value — while flags the CTA would have set are salvaged.
    let victim = vec![
        st(0), // dirty in GPM0's L2 under write-back
        TraceOp::Delay(450),
        ld(0),                // consumes the poisoned copy
        TraceOp::Delay(5000), // keep the CTA alive until the response lands
        TraceOp::SetFlag(7),
    ];
    let waiter = vec![TraceOp::WaitFlag { flag: 7, count: 1 }];
    let trace = WorkloadTrace::new(
        "wb-poison",
        vec![kernel_per_gpm(vec![victim, vec![], waiter, vec![]])],
    );
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.l2_write_policy = hmg_gpu::WritePolicy::WriteBack;
    cfg.ecc_double_bit_fraction = 1.0; // every flip is uncorrectable
    cfg.livelock_budget = Some(200_000);
    cfg.faults = FaultPlan::parse("flip-line=1.0,seed=11").unwrap();
    let m = Engine::try_new(cfg)
        .unwrap()
        .try_run(&trace)
        .expect("poison must abort the CTA, not hang the waiter");
    assert!(m.integrity.poisoned >= 1, "{}", m.integrity);
    assert!(m.integrity.aborted_ctas >= 1, "{}", m.integrity);
    assert_eq!(m.integrity.silent_corruptions, 0);
    assert_eq!(
        m.integrity.flips(),
        m.integrity.accounted(),
        "conservation: {}",
        m.integrity
    );
}

#[test]
fn gpm_offline_mid_delay_aborts_the_cta_without_hanging() {
    // GPM3 dies while its CTA sits in a long delay. With the watchdog
    // armed the run must neither hang nor abort: the CTA is aborted,
    // the kernel's remaining CTAs finish, and flags the dead CTA would
    // have set are salvaged so no waiter sleeps forever.
    let trace = WorkloadTrace::new(
        "gpm-off-abort",
        vec![kernel_per_gpm(vec![
            vec![TraceOp::WaitFlag { flag: 9, count: 1 }, ld(0)],
            vec![ld(0)],
            vec![ld(0)],
            vec![TraceOp::Delay(50_000), TraceOp::SetFlag(9)],
        ])],
    );
    let mut cfg = EngineConfig::small_test(ProtocolKind::Hmg);
    cfg.livelock_budget = Some(80_000);
    cfg.faults = FaultPlan::parse("gpm-offline=1.1@10000").unwrap();
    let m = Engine::try_new(cfg)
        .unwrap()
        .try_run(&trace)
        .expect("the abort must salvage flag 9 so GPM0's waiter wakes");
    assert_eq!(m.reconfig.epochs, 1);
    assert!(m.reconfig.aborted_ctas >= 1, "GPM3's CTA dies mid-delay");
    assert!(
        m.total_cycles.as_u64() >= 10_000,
        "the run outlives the loss"
    );
}
