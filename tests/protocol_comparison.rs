//! End-to-end performance-relation sanity across the suite at test
//! scale: the qualitative orderings the paper's figures rest on.

use hmg::experiments::{fig2, fig8, ExpOptions};
use hmg::prelude::*;

fn opts(workloads: &[&str]) -> ExpOptions {
    ExpOptions {
        scale: Scale::Tiny,
        seed: 17,
        filter: Some(workloads.iter().map(|s| s.to_string()).collect()),
        ..ExpOptions::default()
    }
}

#[test]
fn fig8_structure_and_orderings() {
    let r = fig8(&opts(&["RNN_FW", "bfs", "CoMD", "lstm"])).expect("fig8");
    assert_eq!(r.workloads.len(), 4);
    assert_eq!(r.protocols.len(), 5);
    // All speedups within sane bounds.
    for (w, row) in r.workloads.iter().zip(&r.rows) {
        for (&p, &v) in r.protocols.iter().zip(row) {
            assert!(v > 0.2 && v < 50.0, "{w}/{p}: speedup {v}");
        }
    }
    // The caching upper bound leads the geomean (small tolerance for
    // tiny-scale noise).
    let ideal = r.geomean_of(ProtocolKind::Ideal);
    for &p in &r.protocols {
        assert!(
            ideal >= r.geomean_of(p) * 0.9,
            "{p} geomean exceeds ideal's meaningfully"
        );
    }
}

#[test]
fn hmg_coalesces_broadcasts_that_flat_tracking_cannot() {
    // The paper's core claim, isolated: both GPMs of GPU1 read the same
    // GPU0-homed region. Flat NHCC crosses the inter-GPU link once per
    // GPM; HMG's GPU home serves the second GPM inside GPU1, so HMG must
    // move strictly fewer data bytes between GPUs.
    use hmg_mem::Addr;
    use hmg_protocol::{Access, Cta, Kernel, TraceOp, WorkloadTrace};

    let lines = 64u64;
    let homing: Vec<TraceOp> = (0..lines)
        .map(|i| TraceOp::Access(Access::load(Addr(i * 128))))
        .collect();
    // Spread each reader's accesses with delays so fills land between
    // reads rather than all merging in flight.
    let reader = |offset: u64| -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for round in 0..3u64 {
            for i in 0..lines {
                let line = (i + offset + round * 7) % lines;
                ops.push(TraceOp::Access(Access::load(Addr(line * 128))));
                ops.push(TraceOp::Delay(20));
            }
        }
        ops
    };
    let trace = WorkloadTrace::new(
        "broadcast-iso",
        vec![
            Kernel::new(vec![
                Cta::new(homing),
                Cta::new(vec![]),
                Cta::new(vec![]),
                Cta::new(vec![]),
            ]),
            Kernel::new(vec![
                Cta::new(vec![]),
                Cta::new(vec![]),
                Cta::new(reader(0)),
                Cta::new(reader(13)),
            ]),
        ],
    );
    let data = |p: ProtocolKind| {
        let m = Engine::new(EngineConfig::small_test(p)).run(&trace);
        m.fabric.inter_bytes(hmg::interconnect::MsgClass::Data)
    };
    let nhcc = data(ProtocolKind::Nhcc);
    let hmg = data(ProtocolKind::Hmg);
    assert!(
        hmg < nhcc,
        "GPU-home coalescing must cut inter-GPU data: hmg={hmg} nhcc={nhcc}"
    );
}

#[test]
fn hw_coherence_beats_sw_on_fine_grained_sharing() {
    let r = fig8(&opts(&["bfs"])).expect("fig8");
    let hmg = r.geomean_of(ProtocolKind::Hmg);
    let sw = r.geomean_of(ProtocolKind::SwNonHier);
    assert!(
        hmg > sw,
        "cross-kernel reuse must reward hardware coherence: hmg={hmg} sw={sw}"
    );
}

#[test]
fn fig2_is_the_motivating_subset() {
    let r = fig2(&opts(&["bfs", "CoMD"])).expect("fig2");
    assert_eq!(
        r.protocols,
        vec![
            ProtocolKind::SwNonHier,
            ProtocolKind::Nhcc,
            ProtocolKind::Ideal
        ]
    );
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn whole_suite_runs_at_tiny_scale() {
    // Smoke: every Table III workload executes under every protocol.
    let mut runner = Runner::new(Scale::Tiny);
    for spec in hmg::workloads::suite::table3() {
        let trace = spec.generate(Scale::Tiny, 4);
        for p in ProtocolKind::ALL {
            let m = runner.run(&trace, p);
            assert!(
                m.total_cycles.as_u64() > 0,
                "{}/{p} produced an empty run",
                spec.abbrev
            );
        }
    }
}

/// Pre-refactor golden `(state_digest, total_cycles)` for every
/// protocol configuration on the Fig. 8 tiny cells, recorded from the
/// seed tree **before** the DES hot-path rewrite (calendar event queue,
/// flat-map state, dense fabric sequence table) landed. The digest pins
/// the committed memory state; the cycle count pins the full event
/// schedule, so even an ordering drift that happens to converge to the
/// same memory state fails loudly here.
#[test]
fn fig8_cells_match_pre_refactor_goldens() {
    use hmg::experiments::{run_cell, CellCtx};
    // Cycle counts in `ProtocolKind::ALL` order: no-peer-caching,
    // sw-nonhier, nhcc, sw-hier, hmg, carve-like, ideal.
    const GOLDEN: [(&str, u64, [u64; 7]); 4] = [
        (
            "RNN_FW",
            0x68d06f1939e60da5,
            [7185, 7185, 7188, 7737, 7665, 7172, 7668],
        ),
        (
            "bfs",
            0xe1d7f3f0ef5b3e4e,
            [7011, 7011, 5877, 7554, 6060, 5472, 5954],
        ),
        (
            "CoMD",
            0x072e02bf5e2a01a5,
            [7209, 7209, 7051, 7764, 7435, 6990, 6362],
        ),
        (
            "lstm",
            0x68d06f1939e60da5,
            [7284, 7284, 7287, 7839, 8469, 7232, 7735],
        ),
    ];
    for (workload, digest, cycles) in GOLDEN {
        for (&p, &golden_cycles) in ProtocolKind::ALL.iter().zip(&cycles) {
            let ctx = CellCtx {
                key: format!("{workload}/{}", p.name()),
                workload: workload.to_string(),
                protocol: p,
                tweak: String::new(),
                scale: Scale::Tiny,
                seed: 17,
                faults: None,
                livelock_budget: None,
                snapshot_path: None,
                snapshot_interval: 0,
            };
            let out = run_cell(&ctx).expect("golden cell runs clean");
            assert_eq!(
                out.digest, digest,
                "{workload}/{p}: committed state diverged from the pre-refactor golden"
            );
            assert_eq!(
                out.cycles, golden_cycles,
                "{workload}/{p}: event schedule drifted from the pre-refactor golden"
            );
        }
    }
}

/// Golden final-memory-state digest, one cell per protocol. The digest
/// folds every committed `(line, version)` pair, so it pins two things
/// at once: the exact memory state this workload/seed must produce
/// (catching silent generator or commit-path drift), and the invariant
/// that the coherence protocol choice affects *timing only* — every
/// protocol, including the idealized upper bound, must commit the
/// identical state.
#[test]
fn state_digest_is_golden_and_protocol_independent() {
    const GOLDEN: u64 = 0xe1d7f3f0ef5b3e4e;
    let spec = hmg::workloads::suite::table3()
        .into_iter()
        .find(|s| s.abbrev == "bfs")
        .expect("bfs is in Table III");
    let trace = spec.generate(Scale::Tiny, 17);
    let mut runner = Runner::new(Scale::Tiny);
    for p in ProtocolKind::ALL {
        let m = runner.run(&trace, p);
        assert_eq!(
            m.state_digest, GOLDEN,
            "{p}: committed memory state diverged from the golden digest"
        );
    }
}
