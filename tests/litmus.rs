//! Litmus tests: the classic memory-model communication patterns, run
//! through the full timing model under every coherent configuration.
//!
//! The engine tracks a monotone version per line; a probe on the
//! communicated line records the version every load observes. These
//! tests assert the visibility the scoped model guarantees: after a
//! release→flag→wait→acquire chain at sufficient scope, the consumer
//! must observe the producer's write.

use hmg::prelude::*;
use hmg_mem::Addr;
use hmg_protocol::{Access, AccessKind, Cta, Kernel, TraceOp, WorkloadTrace};

/// The coherent configurations (idealized caching intentionally skips
/// invalidation, so it makes no visibility promises).
const COHERENT: [ProtocolKind; 6] = [
    ProtocolKind::NoPeerCaching,
    ProtocolKind::SwNonHier,
    ProtocolKind::SwHier,
    ProtocolKind::Nhcc,
    ProtocolKind::Hmg,
    ProtocolKind::CarveLike,
];

fn ld(addr: u64) -> TraceOp {
    TraceOp::Access(Access::load(Addr(addr)))
}

fn st(addr: u64) -> TraceOp {
    TraceOp::Access(Access::store(Addr(addr)))
}

/// One CTA per GPM of the `small_test` 2-GPU x 2-GPM machine.
fn kernel_per_gpm(mut ops: Vec<Vec<TraceOp>>) -> Kernel {
    ops.resize(4, Vec::new());
    Kernel::new(ops.into_iter().map(Cta::new).collect())
}

fn run_probed(p: ProtocolKind, trace: &WorkloadTrace, line: u64) -> RunMetrics {
    let mut cfg = EngineConfig::small_test(p);
    cfg.probe_line = Some(line);
    Engine::new(cfg).run(trace)
}

/// MP (message passing) across GPUs with `.sys` scope: the canonical
/// pattern of Section III-B.
#[test]
fn mp_inter_gpu_sys_scope() {
    let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(1)];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 1, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "mp-sys",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]), // home the line at GPM0
            // Consumer on GPM2 = the other GPU.
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(
            m.probe.last().expect("consumer read").1,
            1,
            "{p}: consumer must observe the store"
        );
    }
}

/// MP within one GPU using only `.gpu` scope — the cheap synchronization
/// HMG is designed to make fast (Section V-B).
#[test]
fn mp_intra_gpu_gpu_scope() {
    let producer = vec![st(0), TraceOp::Release(Scope::Gpu), TraceOp::SetFlag(2)];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 2, count: 1 },
        TraceOp::Acquire(Scope::Gpu),
        TraceOp::Access(Access::new(Addr(0), AccessKind::Load, Scope::Gpu)),
    ];
    let trace = WorkloadTrace::new(
        "mp-gpu",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]),
            // Producer GPM0 and consumer GPM1 share GPU0.
            kernel_per_gpm(vec![producer, consumer, vec![], vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 1, "{p}");
    }
}

/// MP where the communicated line is *stale in the consumer's caches*
/// before synchronization — the case that actually exercises
/// invalidations (HW) and bulk acquire invalidation (SW).
#[test]
fn mp_with_stale_copy_in_consumer_cache() {
    let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(3)];
    let consumer = vec![
        ld(0), // warm a copy of version 1
        TraceOp::WaitFlag { flag: 3, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "mp-stale",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]), // version 2
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        let last = m.probe.last().unwrap();
        assert_eq!(last.1, 2, "{p}: stale copy must not satisfy the read");
    }
}

/// Transitive communication: A writes, syncs with B; B reads then
/// writes a second line and syncs with C; C must see B's write.
#[test]
fn transitive_three_agent_chain() {
    let line_a = 0u64;
    let line_b = 4 * 1024 * 1024; // a different page
    let a = vec![
        st(line_a),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(10),
    ];
    let b = vec![
        TraceOp::WaitFlag { flag: 10, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(line_a),
        st(line_b),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(11),
    ];
    let c = vec![
        TraceOp::WaitFlag { flag: 11, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(line_b),
    ];
    let trace = WorkloadTrace::new(
        "transitive",
        vec![
            kernel_per_gpm(vec![vec![ld(line_a)], vec![ld(line_b)]]),
            kernel_per_gpm(vec![a, b, c, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, line_b / 128);
        assert_eq!(m.probe.last().unwrap().1, 1, "{p}: C must see B's write");
    }
}

/// Kernel boundaries are implicit `.sys` synchronization: a dependent
/// kernel must see everything the previous kernel wrote, with no
/// explicit fences in the trace.
#[test]
fn kernel_boundary_is_release_acquire() {
    let trace = WorkloadTrace::new(
        "kernel-sync",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]),
            kernel_per_gpm(vec![vec![], vec![], vec![], vec![ld(0)]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 1, "{p}");
    }
}

/// Atomics performed at the scope home are visible to subsequent
/// synchronized readers.
#[test]
fn atomic_then_synchronized_read() {
    let producer = vec![
        TraceOp::Access(Access::atomic(Addr(0), Scope::Sys)),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(5),
    ];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 5, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "atomic-mp",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]),
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 1, "{p}");
    }
}

/// Two producers chained by flags: the consumer waits for both and must
/// see the later version.
#[test]
fn two_producers_counting_flag() {
    let p0 = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(8)];
    let p1 = vec![
        TraceOp::WaitFlag { flag: 8, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        st(0),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(8),
    ];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 8, count: 2 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "two-producers",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]),
            kernel_per_gpm(vec![p0, p1, consumer, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 2, "{p}: both stores ordered");
    }
}

/// Per-location read coherence (CoRR): once a synchronized reader has
/// observed version v of a line, its subsequent reads of the same line
/// never observe anything older — even plain, unsynchronized ones.
#[test]
fn corr_no_regression_after_synchronization() {
    let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(20)];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 20, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
        TraceOp::Delay(2000),
        ld(0), // plain re-read
        TraceOp::Delay(2000),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "corr",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]),
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        // The consumer SM's observations must be monotone.
        let consumer_sm: Vec<u64> = m
            .probe
            .iter()
            .filter(|&&(sm, _)| sm >= 4) // SMs of GPM2 on the small machine
            .map(|&(_, v)| v)
            .collect();
        let mut hi = 0;
        for v in consumer_sm {
            assert!(v >= hi, "{p}: read regressed from {hi} to {v}");
            hi = hi.max(v);
        }
    }
}

/// Write-after-write to one line from one agent: a synchronized reader
/// sees the *last* write (CoWW through the release).
#[test]
fn coww_last_write_wins_through_release() {
    let producer = vec![
        st(0),
        st(0),
        st(0),
        TraceOp::Release(Scope::Sys),
        TraceOp::SetFlag(21),
    ];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 21, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "coww",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]),
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 3, "{p}: must see the last write");
    }
}

/// Without synchronization the idealized protocol may legally return
/// stale data — the checker distinguishes coherent configurations from
/// the upper bound.
#[test]
fn ideal_runs_but_promises_nothing() {
    let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(9)];
    let consumer = vec![
        ld(0),
        TraceOp::WaitFlag { flag: 9, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "stale-ideal",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]),
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]),
        ],
    );
    // Ideal completes (no deadlock); no visibility assertion is made.
    let m = run_probed(ProtocolKind::Ideal, &trace, 0);
    assert!(!m.probe.is_empty());
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(m.probe.last().unwrap().1, 2, "{p}");
    }
}

/// MP between two GPMs of the *remote* GPU using only `.gpu` scope,
/// while the line's system home lives on GPU0. Ported from the
/// `hmg-check` enumerator (its strongest two-thread class): under
/// HMG's hierarchical protocol the GPU home must order the store and
/// serve the synchronized read without consulting the system home
/// (Sections IV-B and V-B); flat and software protocols must reach the
/// same answer through the system home.
#[test]
fn mp_gpu_scope_on_remote_gpu() {
    let producer = vec![st(0), TraceOp::Release(Scope::Gpu), TraceOp::SetFlag(30)];
    let consumer = vec![
        TraceOp::WaitFlag { flag: 30, count: 1 },
        TraceOp::Acquire(Scope::Gpu),
        TraceOp::Access(Access::new(Addr(0), AccessKind::Load, Scope::Gpu)),
    ];
    let trace = WorkloadTrace::new(
        "mp-remote-gpu",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            // Producer GPM2 and consumer GPM3 share GPU1.
            kernel_per_gpm(vec![vec![], vec![], producer, consumer]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        assert_eq!(
            m.probe.last().unwrap().1,
            2,
            "{p}: gpu-scope sync on the non-home GPU must publish the store"
        );
    }
}

/// IRIW-style independent reads of independent writes, one thread per
/// GPM. Scoped GPU models are non-multi-copy-atomic (Section III): the
/// two readers may legally disagree on the order of the two plain
/// stores, so the concurrent phase asserts only the per-line version
/// *range*, while the next kernel (an implicit `.sys` release/acquire
/// boundary) must show both readers the final version of both lines.
/// Two probe runs, one per communicated line.
#[test]
fn iriw_readers_bounded_then_converge() {
    let line_a = 0u64;
    let line_b = 512u64; // line 4: same first-touch page, distinct block
    let w0 = vec![st(line_a)];
    let r1 = vec![ld(line_a), ld(line_b)];
    let w2 = vec![st(line_b)];
    let r3 = vec![ld(line_b), ld(line_a)];
    let trace = WorkloadTrace::new(
        "iriw",
        vec![
            kernel_per_gpm(vec![vec![ld(line_a), ld(line_b)]]), // home both at GPM0
            kernel_per_gpm(vec![w0, r1, w2, r3]),
            kernel_per_gpm(vec![vec![ld(line_a), ld(line_b)]; 4]),
        ],
    );
    for p in COHERENT {
        for line in [line_a / 128, line_b / 128] {
            let m = run_probed(p, &trace, line);
            // Each line is written exactly once: every observation is
            // the initial 0 or the store's 1, in any reader order.
            assert!(
                m.probe.iter().all(|&(_, v)| v <= 1),
                "{p}: version out of range on line {line}"
            );
            // The final kernel's four reads (last four records) all see
            // the committed store.
            let n = m.probe.len();
            assert!(
                m.probe[n - 4..].iter().all(|&(_, v)| v == 1),
                "{p}: a reader missed the store after the kernel boundary"
            );
        }
    }
}

/// RMW atomicity for `.gpu`-scoped atomics issued from both GPMs of
/// GPU1 to a line homed at GPM0. Atomics are performed at their scope
/// home (Section IV-C): each read-modify-write observes exactly the
/// version it wrote, so six atomics observe the multiset {1..6} — no
/// lost updates, no duplicated serial numbers — and each SM's own
/// observations are strictly increasing (its program order).
#[test]
fn rmw_gpu_scope_atomics_serialize_without_loss() {
    let hammer = |_: ()| {
        vec![
            TraceOp::Access(Access::atomic(Addr(0), Scope::Gpu)),
            TraceOp::Access(Access::atomic(Addr(0), Scope::Gpu)),
            TraceOp::Access(Access::atomic(Addr(0), Scope::Gpu)),
        ]
    };
    let trace = WorkloadTrace::new(
        "rmw-atomicity",
        vec![
            kernel_per_gpm(vec![vec![ld(0)]]), // home the line at GPM0
            kernel_per_gpm(vec![vec![], vec![], hammer(()), hammer(())]),
        ],
    );
    for p in COHERENT {
        let m = run_probed(p, &trace, 0);
        // Skip the homing read; the rest are the atomics' observations.
        let mut seen: Vec<u64> = m.probe[1..].iter().map(|&(_, v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6], "{p}: lost or duplicated RMW");
        for sm in [4u32, 6] {
            let mine: Vec<u64> = m.probe[1..]
                .iter()
                .filter(|&&(s, _)| s == sm)
                .map(|&(_, v)| v)
                .collect();
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "{p}: sm{sm} observed {mine:?}, not in program order"
            );
        }
    }
}

/// MP across the GPM0<->GPM1 first-tier link while that link dies
/// mid-litmus — the fail-in-place class graduated from the
/// `experiments check --faults link-down=0-1@400` sweep (DESIGN.md §9).
/// The producer's store, its invalidations, and the consumer's reload
/// all detour over the second-tier switch path; release/acquire
/// visibility must hold exactly as on the healthy fabric.
#[test]
fn mp_fail_in_place_across_a_dead_first_tier_link() {
    let producer = vec![st(0), TraceOp::Release(Scope::Gpu), TraceOp::SetFlag(5)];
    let consumer = vec![
        ld(0), // warm a copy so the store must invalidate across the dead link
        TraceOp::WaitFlag { flag: 5, count: 1 },
        TraceOp::Acquire(Scope::Gpu),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "mp-link-down",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            // Producer at the home GPM0, consumer on GPM1: every
            // coherence message between them crosses the dead link.
            kernel_per_gpm(vec![producer, consumer, vec![], vec![]]),
        ],
    );
    for p in COHERENT {
        let mut cfg = EngineConfig::small_test(p);
        cfg.probe_line = Some(0);
        cfg.faults = FaultPlan::parse("link-down=0-1@400").expect("valid plan");
        let m = Engine::try_new(cfg)
            .expect("valid config")
            .try_run(&trace)
            .unwrap_or_else(|e| panic!("{p}: a dead link must be survived, got {e}"));
        assert_eq!(
            m.probe.last().expect("consumer read").1,
            2,
            "{p}: the consumer must observe the producer's store over the detour"
        );
        assert_eq!(m.reconfig.epochs, 1, "{p}: the link loss opens an epoch");
    }
}

/// MP across GPUs under a continuous storm of *correctable* soft errors
/// (SEC-DED with a zero double-bit fraction): every resident-line flip
/// is corrected in place by ECC, so the litmus outcome, the probe
/// history, and the final committed memory are bit-identical to the
/// fault-free run — and not one flip goes silent (DESIGN.md §12).
#[test]
fn mp_correctable_line_flips_are_invisible() {
    let producer = vec![st(0), TraceOp::Release(Scope::Sys), TraceOp::SetFlag(3)];
    let consumer = vec![
        ld(0), // warm a stale copy the flips can land on
        TraceOp::Delay(2500),
        TraceOp::WaitFlag { flag: 3, count: 1 },
        TraceOp::Acquire(Scope::Sys),
        ld(0),
    ];
    let trace = WorkloadTrace::new(
        "mp-flip-correctable",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            kernel_per_gpm(vec![producer, vec![], consumer, vec![]]), // version 2
        ],
    );
    for p in COHERENT {
        let clean = run_probed(p, &trace, 0);
        let mut cfg = EngineConfig::small_test(p);
        cfg.probe_line = Some(0);
        cfg.ecc_double_bit_fraction = 0.0; // every flip is single-bit
        cfg.faults = FaultPlan::parse("flip-line=1.0,seed=13").expect("valid plan");
        let m = Engine::try_new(cfg)
            .expect("valid config")
            .try_run(&trace)
            .unwrap_or_else(|e| panic!("{p}: correctable flips must be survived, got {e}"));
        assert!(m.integrity.flips_line > 0, "{p}: the storm must inject");
        assert!(m.integrity.corrected > 0, "{p}: ECC must correct in place");
        assert_eq!(m.integrity.silent_corruptions, 0, "{p}");
        assert_eq!(
            m.integrity.flips(),
            m.integrity.accounted(),
            "{p}: every flip must be accounted: {}",
            m.integrity
        );
        assert_eq!(m.probe, clean.probe, "{p}: correction must be invisible");
        assert_eq!(m.state_digest, clean.state_digest, "{p}: memory state");
    }
}

/// MP between the GPMs of the remote GPU while *uncorrectable*
/// directory-entry corruption hammers every home: each hit discards the
/// unrecoverable sharer list, scrubs the survivors' copies, and
/// re-creates the entry in conservative sticky-broadcast mode. The
/// litmus outcome must survive every rebuild with zero silent
/// corruptions (DESIGN.md §12).
#[test]
fn mp_uncorrectable_dir_flips_recover_via_rebuild() {
    let producer = vec![st(0), TraceOp::Release(Scope::Gpu), TraceOp::SetFlag(30)];
    let consumer = vec![
        ld(0), // register as a sharer the corrupt entry forgets
        TraceOp::Delay(2500),
        TraceOp::WaitFlag { flag: 30, count: 1 },
        TraceOp::Acquire(Scope::Gpu),
        TraceOp::Access(Access::new(Addr(0), AccessKind::Load, Scope::Gpu)),
    ];
    let trace = WorkloadTrace::new(
        "mp-flip-dir",
        vec![
            kernel_per_gpm(vec![vec![st(0)]]), // version 1, homed at GPM0
            // Producer GPM2 and consumer GPM3 share GPU1.
            kernel_per_gpm(vec![vec![], vec![], producer, consumer]),
        ],
    );
    // Directory-backed protocols only: the software baselines keep no
    // directory state a flip could corrupt.
    for p in [ProtocolKind::Hmg, ProtocolKind::Nhcc] {
        let clean = run_probed(p, &trace, 0);
        let mut cfg = EngineConfig::small_test(p);
        cfg.probe_line = Some(0);
        cfg.ecc_double_bit_fraction = 1.0; // every flip is uncorrectable
        cfg.faults = FaultPlan::parse("flip-dir=1.0,seed=29").expect("valid plan");
        let m = Engine::try_new(cfg)
            .expect("valid config")
            .try_run(&trace)
            .unwrap_or_else(|e| panic!("{p}: dir corruption must be survived, got {e}"));
        assert!(m.integrity.flips_dir > 0, "{p}: the storm must inject");
        assert!(
            m.integrity.rebuilt_dir_entries > 0,
            "{p}: uncorrectable entries must rebuild: {}",
            m.integrity
        );
        assert_eq!(m.integrity.silent_corruptions, 0, "{p}");
        assert_eq!(
            m.integrity.flips(),
            m.integrity.accounted(),
            "{p}: every flip must be accounted: {}",
            m.integrity
        );
        assert_eq!(
            m.probe.last().expect("consumer read").1,
            2,
            "{p}: the consumer must observe the store through every rebuild"
        );
        assert_eq!(m.state_digest, clean.state_digest, "{p}: memory state");
    }
}
