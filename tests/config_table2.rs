//! Asserts that the default simulated machine is exactly the Table II
//! configuration, and that the §VII-C hardware-cost arithmetic matches
//! the paper.

use hmg::prelude::*;

#[test]
fn table_ii_configuration() {
    let c = EngineConfig::paper_default(ProtocolKind::Hmg);

    // Structure.
    assert_eq!(c.topo.num_gpus(), 4, "Number of GPUs");
    assert_eq!(c.topo.gpms_per_gpu(), 4, "Number of GPMs per GPU");
    assert_eq!(c.total_sms(), 512, "128 SMs per GPU, 512 in total");

    // Frequency and pages.
    assert!((c.fabric.freq_ghz - 1.3).abs() < 1e-12, "GPU frequency");
    assert_eq!(c.geometry.page_bytes(), 2 * 1024 * 1024, "OS page size");

    // L1: 128 KB per SM, 128 B lines.
    assert_eq!(c.geometry.line_bytes(), 128);
    assert_eq!(c.l1.lines as u64 * 128, 128 * 1024);

    // L2: 12 MB per GPU, 128 B lines, 16 ways.
    assert_eq!(
        c.l2.lines as u64 * 128 * c.topo.gpms_per_gpu() as u64,
        12 * 1024 * 1024
    );
    assert_eq!(c.l2.ways, 16);

    // Directory: 12K entries per GPM, each entry covers 4 cache lines.
    assert_eq!(c.dir.entries, 12 * 1024);
    assert_eq!(c.geometry.lines_per_block(), 4);

    // Bandwidths.
    assert!((c.fabric.intra_gpu_gbps - 2000.0).abs() < 1e-9, "2 TB/s");
    assert!((c.fabric.inter_gpu_gbps - 200.0).abs() < 1e-9, "200 GB/s");
    // 1 TB/s DRAM per GPU => 250 GB/s per GPM at 1.3 GHz.
    assert!((c.dram_bytes_per_cycle * 1.3 - 250.0).abs() < 1e-6);
}

#[test]
fn directory_coverage_matches_section_vi() {
    // §VI: 12K entries x 4 lines x 128 B = 6 MB of shareable data per GPM.
    let c = EngineConfig::paper_default(ProtocolKind::Hmg);
    let coverage =
        c.dir.entries as u64 * c.geometry.lines_per_block() as u64 * c.geometry.line_bytes() as u64;
    assert_eq!(coverage, 6 * 1024 * 1024);
}

#[test]
fn storage_cost_matches_section_vii_c() {
    let (bits, bytes, frac) = hmg::experiments::storage_cost();
    assert_eq!(bits, 55, "48 tag + 1 state + 6 sharers");
    assert_eq!(bytes, 84_480, "~84 KB per GPM");
    assert!(
        (frac - 0.027).abs() < 0.002,
        "2.7% of the L2 slice, got {frac}"
    );
}

#[test]
fn max_sharers_is_m_plus_n_minus_two() {
    // §V-A: an M-GPM, N-GPU system tracks at most M + N - 2 sharers.
    let c = EngineConfig::paper_default(ProtocolKind::Hmg);
    assert_eq!(c.topo.max_hierarchical_sharers(), 6);
    let big = hmg::interconnect::Topology::new(8, 6);
    assert_eq!(big.max_hierarchical_sharers(), 12);
}
