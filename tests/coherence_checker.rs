//! Randomized functional coherence checker.
//!
//! Generates randomized multi-round producer/consumer schedules over one
//! probed line: in round `r` a (randomly placed) producer CTA stores the
//! line, releases, and bumps a flag; every consumer waits for the flag,
//! acquires, and reads. Producers are serialized round-to-round by an
//! acknowledgment flag, so round `r`'s store is exactly version `r + 1`
//! — and scope-correct visibility demands every consumer's `r`-th read
//! observe at least version `r + 1`.
//!
//! Because per-SM reads are serialized by the flag waits, a consumer
//! SM's probe observations appear in round order, which lets us map each
//! observation to its round without extra plumbing.

use hmg::prelude::*;
use hmg_mem::Addr;
use hmg_protocol::{Access, Cta, Kernel, TraceOp, WorkloadTrace};
use hmg_sim::Rng;

const COHERENT: [ProtocolKind; 6] = [
    ProtocolKind::NoPeerCaching,
    ProtocolKind::SwNonHier,
    ProtocolKind::SwHier,
    ProtocolKind::Nhcc,
    ProtocolKind::Hmg,
    ProtocolKind::CarveLike,
];

/// Builds a randomized `rounds`-round schedule over 4 CTAs (one per GPM
/// of the small_test machine). Returns the trace; CTA index = GPM index.
fn random_schedule(rounds: u32, seed: u64) -> WorkloadTrace {
    let mut rng = Rng::new(seed);
    let line_addr = 0u64;
    let n_ctas = 4u32;
    let mut ops: Vec<Vec<TraceOp>> = vec![Vec::new(); n_ctas as usize];

    // Home the line deterministically at GPM0 first.
    ops[0].push(TraceOp::Access(Access::load(Addr(line_addr))));
    // Flag 2r = "round r produced"; flag 2r+1 = "round r consumed".
    for r in 0..rounds {
        let producer = rng.gen_range(0, n_ctas as u64) as usize;
        // Whether consumers warm a stale copy before synchronizing.
        let warm = rng.gen_bool(0.5);
        for (i, cta) in ops.iter_mut().enumerate() {
            if i == producer {
                if r > 0 {
                    // Wait until every consumer acknowledged round r-1.
                    cta.push(TraceOp::WaitFlag {
                        flag: 2 * r - 1,
                        count: n_ctas - 1,
                    });
                    cta.push(TraceOp::Acquire(Scope::Sys));
                }
                cta.push(TraceOp::Access(Access::store(Addr(line_addr))));
                cta.push(TraceOp::Release(Scope::Sys));
                cta.push(TraceOp::SetFlag(2 * r));
                // The producer acknowledges its own round too? No — the
                // consumer count excludes the producer, and each round's
                // producer varies, so every CTA acknowledges when it is
                // a consumer.
            } else {
                if warm {
                    cta.push(TraceOp::Access(Access::load(Addr(line_addr))));
                }
                cta.push(TraceOp::WaitFlag {
                    flag: 2 * r,
                    count: 1,
                });
                cta.push(TraceOp::Acquire(Scope::Sys));
                cta.push(TraceOp::Access(Access::load(Addr(line_addr))));
                cta.push(TraceOp::Release(Scope::Sys));
                cta.push(TraceOp::SetFlag(2 * r + 1));
            }
        }
    }
    WorkloadTrace::new(
        format!("checker-{seed}"),
        vec![Kernel::new(ops.into_iter().map(Cta::new).collect())],
    )
}

/// Runs one schedule under one protocol and checks every observation.
fn check(p: ProtocolKind, rounds: u32, seed: u64) {
    let trace = random_schedule(rounds, seed);
    let mut cfg = EngineConfig::small_test(p);
    cfg.probe_line = Some(0);
    let m = Engine::new(cfg).run(&trace);

    // Group observations per SM in completion order; each SM's
    // synchronized reads are its per-round observations, in order.
    // (Unsynchronized "warm" reads may interleave; they are filtered by
    // only checking the *minimum* requirement below: synchronized reads
    // are exactly the ones following each flag wait, so per SM the k-th
    // *distinct round participation* must observe >= its round's
    // version. We conservatively check monotonicity plus the final
    // value.)
    let mut per_sm: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
    for &(sm, v) in &m.probe {
        per_sm.entry(sm).or_default().push(v);
    }
    // Total stores = rounds, so the final synchronized read of every
    // consumer SM must be the final version of a round it consumed; at
    // minimum, the last observation of each SM that participated in the
    // last round must be >= rounds (the last round's version).
    for (sm, obs) in &per_sm {
        // Versions never exceed the number of stores.
        for &v in obs {
            assert!(
                v <= rounds as u64,
                "{p}: SM{sm} observed impossible version {v}"
            );
        }
    }
    // Every consumer of the final round must see version == rounds.
    // Consumers of round r-1 are all CTAs except the producer; their
    // last probe entry is the synchronized read of the final round they
    // consumed, which is the last round for all non-final-producer CTAs.
    let max_seen = m
        .probe
        .iter()
        .map(|&(_, v)| v)
        .max()
        .expect("some observation");
    assert_eq!(
        max_seen, rounds as u64,
        "{p}: final version must be observed by some consumer"
    );
    // Per-SM observations must never regress below a version that SM
    // has already synchronized with (reads are ordered by flag waits).
    for (sm, obs) in &per_sm {
        let mut hi = 0u64;
        for &v in obs {
            assert!(
                v >= hi.max(1) - 1,
                "{p}: SM{sm} regressed from {hi} to {v} across synchronization"
            );
            hi = hi.max(v);
        }
    }
}

#[test]
fn randomized_rounds_under_all_coherent_protocols() {
    for seed in [1, 7, 42] {
        for p in COHERENT {
            check(p, 6, seed);
        }
    }
}

#[test]
fn longer_schedule_under_hw_protocols() {
    for p in [ProtocolKind::Nhcc, ProtocolKind::Hmg] {
        check(p, 20, 1234);
    }
}

/// The strict per-round visibility check: with a fixed (non-random)
/// producer, every consumer's k-th synchronized read is round k's value.
#[test]
fn strict_round_visibility_fixed_producer() {
    let rounds = 8u32;
    let line = 0u64;
    let mut ops: Vec<Vec<TraceOp>> = vec![Vec::new(); 4];
    ops[0].push(TraceOp::Access(Access::load(Addr(line))));
    for r in 0..rounds {
        // CTA0 always produces.
        if r > 0 {
            ops[0].push(TraceOp::WaitFlag {
                flag: 2 * r - 1,
                count: 3,
            });
        }
        ops[0].push(TraceOp::Access(Access::store(Addr(line))));
        ops[0].push(TraceOp::Release(Scope::Sys));
        ops[0].push(TraceOp::SetFlag(2 * r));
        for cta in ops.iter_mut().skip(1) {
            cta.push(TraceOp::WaitFlag {
                flag: 2 * r,
                count: 1,
            });
            cta.push(TraceOp::Acquire(Scope::Sys));
            cta.push(TraceOp::Access(Access::load(Addr(line))));
            cta.push(TraceOp::SetFlag(2 * r + 1));
        }
    }
    let trace = WorkloadTrace::new(
        "strict",
        vec![Kernel::new(ops.into_iter().map(Cta::new).collect())],
    );
    for p in COHERENT {
        let mut cfg = EngineConfig::small_test(p);
        cfg.probe_line = Some(0);
        let m = Engine::new(cfg).run(&trace);
        let mut per_sm: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
        for &(sm, v) in &m.probe {
            per_sm.entry(sm).or_default().push(v);
        }
        let consumers = per_sm.iter().filter(|(_, obs)| obs.len() > 1).count();
        assert!(consumers >= 3, "{p}: expected 3 consumer SMs");
        for (sm, obs) in per_sm {
            if obs.len() < rounds as usize {
                continue; // the homing load on CTA0
            }
            for (k, &v) in obs.iter().enumerate() {
                // The k-th synchronized read must see round k's store
                // (version k+1) or anything later.
                assert!(
                    v > k as u64,
                    "{p}: SM{sm} round {k} observed stale version {v}"
                );
            }
        }
    }
}
