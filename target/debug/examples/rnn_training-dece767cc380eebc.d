/root/repo/target/debug/examples/rnn_training-dece767cc380eebc.d: crates/core/../../examples/rnn_training.rs

/root/repo/target/debug/examples/rnn_training-dece767cc380eebc: crates/core/../../examples/rnn_training.rs

crates/core/../../examples/rnn_training.rs:
