/root/repo/target/debug/examples/_seedtest-2ac00c50e435e128.d: crates/core/../../examples/_seedtest.rs

/root/repo/target/debug/examples/_seedtest-2ac00c50e435e128: crates/core/../../examples/_seedtest.rs

crates/core/../../examples/_seedtest.rs:
