/root/repo/target/debug/examples/graph_analytics-67acfe0de45dfe48.d: crates/core/../../examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-67acfe0de45dfe48: crates/core/../../examples/graph_analytics.rs

crates/core/../../examples/graph_analytics.rs:
