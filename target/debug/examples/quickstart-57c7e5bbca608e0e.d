/root/repo/target/debug/examples/quickstart-57c7e5bbca608e0e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-57c7e5bbca608e0e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
