/root/repo/target/debug/examples/graph_analytics-2266db40542aa3e9.d: crates/core/../../examples/graph_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_analytics-2266db40542aa3e9.rmeta: crates/core/../../examples/graph_analytics.rs Cargo.toml

crates/core/../../examples/graph_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
