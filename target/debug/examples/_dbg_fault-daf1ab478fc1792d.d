/root/repo/target/debug/examples/_dbg_fault-daf1ab478fc1792d.d: crates/core/../../examples/_dbg_fault.rs

/root/repo/target/debug/examples/_dbg_fault-daf1ab478fc1792d: crates/core/../../examples/_dbg_fault.rs

crates/core/../../examples/_dbg_fault.rs:
