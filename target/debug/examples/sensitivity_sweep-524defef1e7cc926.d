/root/repo/target/debug/examples/sensitivity_sweep-524defef1e7cc926.d: crates/core/../../examples/sensitivity_sweep.rs

/root/repo/target/debug/examples/sensitivity_sweep-524defef1e7cc926: crates/core/../../examples/sensitivity_sweep.rs

crates/core/../../examples/sensitivity_sweep.rs:
