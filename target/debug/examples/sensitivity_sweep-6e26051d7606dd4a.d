/root/repo/target/debug/examples/sensitivity_sweep-6e26051d7606dd4a.d: crates/core/../../examples/sensitivity_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity_sweep-6e26051d7606dd4a.rmeta: crates/core/../../examples/sensitivity_sweep.rs Cargo.toml

crates/core/../../examples/sensitivity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
