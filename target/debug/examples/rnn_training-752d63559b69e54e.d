/root/repo/target/debug/examples/rnn_training-752d63559b69e54e.d: crates/core/../../examples/rnn_training.rs Cargo.toml

/root/repo/target/debug/examples/librnn_training-752d63559b69e54e.rmeta: crates/core/../../examples/rnn_training.rs Cargo.toml

crates/core/../../examples/rnn_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
