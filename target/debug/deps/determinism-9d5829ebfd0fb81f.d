/root/repo/target/debug/deps/determinism-9d5829ebfd0fb81f.d: crates/core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-9d5829ebfd0fb81f.rmeta: crates/core/../../tests/determinism.rs Cargo.toml

crates/core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
