/root/repo/target/debug/deps/proptests-3a51c2865e823fed.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3a51c2865e823fed: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
