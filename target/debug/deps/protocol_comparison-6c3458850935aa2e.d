/root/repo/target/debug/deps/protocol_comparison-6c3458850935aa2e.d: crates/core/../../tests/protocol_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_comparison-6c3458850935aa2e.rmeta: crates/core/../../tests/protocol_comparison.rs Cargo.toml

crates/core/../../tests/protocol_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
