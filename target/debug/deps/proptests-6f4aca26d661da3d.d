/root/repo/target/debug/deps/proptests-6f4aca26d661da3d.d: crates/protocol/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6f4aca26d661da3d.rmeta: crates/protocol/tests/proptests.rs Cargo.toml

crates/protocol/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
