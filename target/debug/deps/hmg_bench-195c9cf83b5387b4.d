/root/repo/target/debug/deps/hmg_bench-195c9cf83b5387b4.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/hmg_bench-195c9cf83b5387b4: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
