/root/repo/target/debug/deps/hmg_sim-7e4a6c7f58942e0a.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/debug/deps/libhmg_sim-7e4a6c7f58942e0a.rlib: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/debug/deps/libhmg_sim-7e4a6c7f58942e0a.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/watchdog.rs:
