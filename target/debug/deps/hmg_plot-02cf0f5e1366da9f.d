/root/repo/target/debug/deps/hmg_plot-02cf0f5e1366da9f.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/debug/deps/libhmg_plot-02cf0f5e1366da9f.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
