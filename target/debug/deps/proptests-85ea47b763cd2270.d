/root/repo/target/debug/deps/proptests-85ea47b763cd2270.d: crates/gpu/tests/proptests.rs

/root/repo/target/debug/deps/proptests-85ea47b763cd2270: crates/gpu/tests/proptests.rs

crates/gpu/tests/proptests.rs:
