/root/repo/target/debug/deps/figures-81d218d8f3fdf591.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-81d218d8f3fdf591.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
