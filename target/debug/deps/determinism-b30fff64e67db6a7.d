/root/repo/target/debug/deps/determinism-b30fff64e67db6a7.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-b30fff64e67db6a7: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
