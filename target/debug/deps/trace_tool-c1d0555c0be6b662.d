/root/repo/target/debug/deps/trace_tool-c1d0555c0be6b662.d: crates/bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/libtrace_tool-c1d0555c0be6b662.rmeta: crates/bench/src/bin/trace_tool.rs

crates/bench/src/bin/trace_tool.rs:
