/root/repo/target/debug/deps/hmg-d94bfa5514ae0b34.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libhmg-d94bfa5514ae0b34.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
