/root/repo/target/debug/deps/trace_tool-4facd0199959a1ee.d: crates/bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-4facd0199959a1ee: crates/bench/src/bin/trace_tool.rs

crates/bench/src/bin/trace_tool.rs:
