/root/repo/target/debug/deps/hmg_gpu-20bf284eff4b3224.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/debug/deps/libhmg_gpu-20bf284eff4b3224.rlib: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/debug/deps/libhmg_gpu-20bf284eff4b3224.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
