/root/repo/target/debug/deps/hmg-250a42fbefabb63f.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libhmg-250a42fbefabb63f.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
