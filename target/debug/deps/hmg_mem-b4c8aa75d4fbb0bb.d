/root/repo/target/debug/deps/hmg_mem-b4c8aa75d4fbb0bb.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

/root/repo/target/debug/deps/libhmg_mem-b4c8aa75d4fbb0bb.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/directory.rs:
crates/mem/src/dram.rs:
crates/mem/src/page.rs:
crates/mem/src/version.rs:
