/root/repo/target/debug/deps/proptests-9ec28c44008f142f.d: crates/workloads/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9ec28c44008f142f.rmeta: crates/workloads/tests/proptests.rs Cargo.toml

crates/workloads/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
