/root/repo/target/debug/deps/fault_injection-6569479567031386.d: crates/core/../../tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-6569479567031386: crates/core/../../tests/fault_injection.rs

crates/core/../../tests/fault_injection.rs:
