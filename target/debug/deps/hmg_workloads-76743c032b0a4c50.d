/root/repo/target/debug/deps/hmg_workloads-76743c032b0a4c50.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libhmg_workloads-76743c032b0a4c50.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
