/root/repo/target/debug/deps/hmg_gpu-62d4cc4e93b46e16.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_gpu-62d4cc4e93b46e16.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
