/root/repo/target/debug/deps/litmus-5b5ffd11bf472453.d: crates/core/../../tests/litmus.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus-5b5ffd11bf472453.rmeta: crates/core/../../tests/litmus.rs Cargo.toml

crates/core/../../tests/litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
