/root/repo/target/debug/deps/end_to_end-22f73473b5083c0d.d: crates/bench/benches/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-22f73473b5083c0d.rmeta: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
