/root/repo/target/debug/deps/hmg_mem-4c9656ec4c56a025.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_mem-4c9656ec4c56a025.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/directory.rs:
crates/mem/src/dram.rs:
crates/mem/src/page.rs:
crates/mem/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
