/root/repo/target/debug/deps/hmg_sim-2d51f1a52571f7a5.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/debug/deps/hmg_sim-2d51f1a52571f7a5: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/watchdog.rs:
