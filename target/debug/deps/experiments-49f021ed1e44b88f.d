/root/repo/target/debug/deps/experiments-49f021ed1e44b88f.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-49f021ed1e44b88f: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
