/root/repo/target/debug/deps/proptests-8bc928df103d4767.d: crates/protocol/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8bc928df103d4767: crates/protocol/tests/proptests.rs

crates/protocol/tests/proptests.rs:
