/root/repo/target/debug/deps/proptests-8530360b8c567814.d: crates/plot/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8530360b8c567814.rmeta: crates/plot/tests/proptests.rs Cargo.toml

crates/plot/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
