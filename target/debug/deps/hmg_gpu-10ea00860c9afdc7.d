/root/repo/target/debug/deps/hmg_gpu-10ea00860c9afdc7.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_gpu-10ea00860c9afdc7.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
