/root/repo/target/debug/deps/components-18c3c4b6f1482429.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/libcomponents-18c3c4b6f1482429.rmeta: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
