/root/repo/target/debug/deps/hmg_bench-1e7cb9ec75765ec7.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_bench-1e7cb9ec75765ec7.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
