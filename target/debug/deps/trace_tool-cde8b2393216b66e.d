/root/repo/target/debug/deps/trace_tool-cde8b2393216b66e.d: crates/bench/src/bin/trace_tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-cde8b2393216b66e.rmeta: crates/bench/src/bin/trace_tool.rs Cargo.toml

crates/bench/src/bin/trace_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
