/root/repo/target/debug/deps/hmg_gpu-52227adbe7a907e1.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/debug/deps/libhmg_gpu-52227adbe7a907e1.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
