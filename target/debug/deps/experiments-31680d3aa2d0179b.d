/root/repo/target/debug/deps/experiments-31680d3aa2d0179b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-31680d3aa2d0179b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
