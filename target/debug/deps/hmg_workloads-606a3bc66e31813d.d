/root/repo/target/debug/deps/hmg_workloads-606a3bc66e31813d.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libhmg_workloads-606a3bc66e31813d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
