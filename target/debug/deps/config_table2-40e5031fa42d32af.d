/root/repo/target/debug/deps/config_table2-40e5031fa42d32af.d: crates/core/../../tests/config_table2.rs Cargo.toml

/root/repo/target/debug/deps/libconfig_table2-40e5031fa42d32af.rmeta: crates/core/../../tests/config_table2.rs Cargo.toml

crates/core/../../tests/config_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
