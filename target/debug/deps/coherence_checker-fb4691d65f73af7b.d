/root/repo/target/debug/deps/coherence_checker-fb4691d65f73af7b.d: crates/core/../../tests/coherence_checker.rs

/root/repo/target/debug/deps/coherence_checker-fb4691d65f73af7b: crates/core/../../tests/coherence_checker.rs

crates/core/../../tests/coherence_checker.rs:
