/root/repo/target/debug/deps/proptests-4d7d2a6e19acb903.d: crates/gpu/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-4d7d2a6e19acb903.rmeta: crates/gpu/tests/proptests.rs Cargo.toml

crates/gpu/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
