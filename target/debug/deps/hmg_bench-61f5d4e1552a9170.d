/root/repo/target/debug/deps/hmg_bench-61f5d4e1552a9170.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libhmg_bench-61f5d4e1552a9170.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
