/root/repo/target/debug/deps/hmg_plot-40419ef3e4556ee7.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/debug/deps/hmg_plot-40419ef3e4556ee7: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
