/root/repo/target/debug/deps/hmg_plot-2d4421bd2db3df3b.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_plot-2d4421bd2db3df3b.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs Cargo.toml

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
