/root/repo/target/debug/deps/hmg-5b29b0b655824f86.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/libhmg-5b29b0b655824f86.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
