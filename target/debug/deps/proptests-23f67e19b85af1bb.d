/root/repo/target/debug/deps/proptests-23f67e19b85af1bb.d: crates/interconnect/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-23f67e19b85af1bb.rmeta: crates/interconnect/tests/proptests.rs Cargo.toml

crates/interconnect/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
