/root/repo/target/debug/deps/hmg_protocol-dfce8283e8cb59d4.d: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs

/root/repo/target/debug/deps/libhmg_protocol-dfce8283e8cb59d4.rmeta: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs

crates/protocol/src/lib.rs:
crates/protocol/src/msg.rs:
crates/protocol/src/op.rs:
crates/protocol/src/policy.rs:
crates/protocol/src/scope.rs:
crates/protocol/src/table.rs:
crates/protocol/src/trace.rs:
crates/protocol/src/tracefile.rs:
