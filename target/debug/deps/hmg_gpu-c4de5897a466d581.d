/root/repo/target/debug/deps/hmg_gpu-c4de5897a466d581.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/debug/deps/hmg_gpu-c4de5897a466d581: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
