/root/repo/target/debug/deps/hierarchy_invariants-649b599fcc833131.d: crates/core/../../tests/hierarchy_invariants.rs

/root/repo/target/debug/deps/hierarchy_invariants-649b599fcc833131: crates/core/../../tests/hierarchy_invariants.rs

crates/core/../../tests/hierarchy_invariants.rs:
