/root/repo/target/debug/deps/hmg_workloads-2d4372c39fa5abb9.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libhmg_workloads-2d4372c39fa5abb9.rlib: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libhmg_workloads-2d4372c39fa5abb9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
