/root/repo/target/debug/deps/litmus-898ff8c7140a34bc.d: crates/core/../../tests/litmus.rs

/root/repo/target/debug/deps/litmus-898ff8c7140a34bc: crates/core/../../tests/litmus.rs

crates/core/../../tests/litmus.rs:
