/root/repo/target/debug/deps/proptests-62a38d3de48c89fd.d: crates/mem/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-62a38d3de48c89fd.rmeta: crates/mem/tests/proptests.rs Cargo.toml

crates/mem/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
