/root/repo/target/debug/deps/hmg_bench-40df72262e264652.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libhmg_bench-40df72262e264652.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
