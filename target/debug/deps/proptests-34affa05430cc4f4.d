/root/repo/target/debug/deps/proptests-34affa05430cc4f4.d: crates/interconnect/tests/proptests.rs

/root/repo/target/debug/deps/proptests-34affa05430cc4f4: crates/interconnect/tests/proptests.rs

crates/interconnect/tests/proptests.rs:
