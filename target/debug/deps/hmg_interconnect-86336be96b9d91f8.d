/root/repo/target/debug/deps/hmg_interconnect-86336be96b9d91f8.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/debug/deps/libhmg_interconnect-86336be96b9d91f8.rmeta: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
