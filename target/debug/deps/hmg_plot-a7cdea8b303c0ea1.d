/root/repo/target/debug/deps/hmg_plot-a7cdea8b303c0ea1.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/debug/deps/libhmg_plot-a7cdea8b303c0ea1.rlib: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/debug/deps/libhmg_plot-a7cdea8b303c0ea1.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
