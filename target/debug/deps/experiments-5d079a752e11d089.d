/root/repo/target/debug/deps/experiments-5d079a752e11d089.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-5d079a752e11d089.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
