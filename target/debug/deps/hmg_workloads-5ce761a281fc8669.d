/root/repo/target/debug/deps/hmg_workloads-5ce761a281fc8669.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_workloads-5ce761a281fc8669.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
