/root/repo/target/debug/deps/hmg-9d9e75e7f5ccd59f.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/libhmg-9d9e75e7f5ccd59f.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
