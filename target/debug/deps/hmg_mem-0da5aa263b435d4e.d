/root/repo/target/debug/deps/hmg_mem-0da5aa263b435d4e.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

/root/repo/target/debug/deps/libhmg_mem-0da5aa263b435d4e.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/directory.rs:
crates/mem/src/dram.rs:
crates/mem/src/page.rs:
crates/mem/src/version.rs:
