/root/repo/target/debug/deps/protocol_comparison-ee65193cac68381b.d: crates/core/../../tests/protocol_comparison.rs

/root/repo/target/debug/deps/protocol_comparison-ee65193cac68381b: crates/core/../../tests/protocol_comparison.rs

crates/core/../../tests/protocol_comparison.rs:
