/root/repo/target/debug/deps/hmg_plot-b73a7a5f09bad375.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/debug/deps/libhmg_plot-b73a7a5f09bad375.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
