/root/repo/target/debug/deps/coherence_checker-43d29f2765dcf0d5.d: crates/core/../../tests/coherence_checker.rs Cargo.toml

/root/repo/target/debug/deps/libcoherence_checker-43d29f2765dcf0d5.rmeta: crates/core/../../tests/coherence_checker.rs Cargo.toml

crates/core/../../tests/coherence_checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
