/root/repo/target/debug/deps/hmg_interconnect-702b9d3f3fcdd8c0.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/debug/deps/hmg_interconnect-702b9d3f3fcdd8c0: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
