/root/repo/target/debug/deps/trace_tool-58bc12bdb444945e.d: crates/bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-58bc12bdb444945e: crates/bench/src/bin/trace_tool.rs

crates/bench/src/bin/trace_tool.rs:
