/root/repo/target/debug/deps/hmg_interconnect-9ab3bc87768fc0f3.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_interconnect-9ab3bc87768fc0f3.rmeta: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs Cargo.toml

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
