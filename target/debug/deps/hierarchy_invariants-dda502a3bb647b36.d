/root/repo/target/debug/deps/hierarchy_invariants-dda502a3bb647b36.d: crates/core/../../tests/hierarchy_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy_invariants-dda502a3bb647b36.rmeta: crates/core/../../tests/hierarchy_invariants.rs Cargo.toml

crates/core/../../tests/hierarchy_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
