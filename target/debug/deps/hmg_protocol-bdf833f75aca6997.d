/root/repo/target/debug/deps/hmg_protocol-bdf833f75aca6997.d: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_protocol-bdf833f75aca6997.rmeta: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs Cargo.toml

crates/protocol/src/lib.rs:
crates/protocol/src/msg.rs:
crates/protocol/src/op.rs:
crates/protocol/src/policy.rs:
crates/protocol/src/scope.rs:
crates/protocol/src/table.rs:
crates/protocol/src/trace.rs:
crates/protocol/src/tracefile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
