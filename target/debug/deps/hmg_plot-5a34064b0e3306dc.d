/root/repo/target/debug/deps/hmg_plot-5a34064b0e3306dc.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_plot-5a34064b0e3306dc.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs Cargo.toml

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
