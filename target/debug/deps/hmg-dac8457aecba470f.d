/root/repo/target/debug/deps/hmg-dac8457aecba470f.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/hmg-dac8457aecba470f: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
