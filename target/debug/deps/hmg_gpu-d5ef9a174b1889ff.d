/root/repo/target/debug/deps/hmg_gpu-d5ef9a174b1889ff.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/debug/deps/libhmg_gpu-d5ef9a174b1889ff.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
