/root/repo/target/debug/deps/hmg_workloads-5646207503f13e81.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/hmg_workloads-5646207503f13e81: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
