/root/repo/target/debug/deps/hmg_sim-6d8b295cf3d361a4.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_sim-6d8b295cf3d361a4.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
