/root/repo/target/debug/deps/proptests-d2fffa170c24d6f5.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d2fffa170c24d6f5: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
