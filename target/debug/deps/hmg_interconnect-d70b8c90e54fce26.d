/root/repo/target/debug/deps/hmg_interconnect-d70b8c90e54fce26.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/debug/deps/libhmg_interconnect-d70b8c90e54fce26.rmeta: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
