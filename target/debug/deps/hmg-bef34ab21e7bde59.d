/root/repo/target/debug/deps/hmg-bef34ab21e7bde59.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/libhmg-bef34ab21e7bde59.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/libhmg-bef34ab21e7bde59.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
