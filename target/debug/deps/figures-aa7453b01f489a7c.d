/root/repo/target/debug/deps/figures-aa7453b01f489a7c.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-aa7453b01f489a7c.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
