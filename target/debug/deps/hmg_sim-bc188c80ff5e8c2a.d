/root/repo/target/debug/deps/hmg_sim-bc188c80ff5e8c2a.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/debug/deps/libhmg_sim-bc188c80ff5e8c2a.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/watchdog.rs:
