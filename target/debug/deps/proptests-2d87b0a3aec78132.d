/root/repo/target/debug/deps/proptests-2d87b0a3aec78132.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2d87b0a3aec78132.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
