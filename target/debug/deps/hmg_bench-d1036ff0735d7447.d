/root/repo/target/debug/deps/hmg_bench-d1036ff0735d7447.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libhmg_bench-d1036ff0735d7447.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libhmg_bench-d1036ff0735d7447.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
