/root/repo/target/debug/deps/proptests-89b8098b83bf5d0d.d: crates/plot/tests/proptests.rs

/root/repo/target/debug/deps/proptests-89b8098b83bf5d0d: crates/plot/tests/proptests.rs

crates/plot/tests/proptests.rs:
