/root/repo/target/debug/deps/config_table2-deba6739245d1f90.d: crates/core/../../tests/config_table2.rs

/root/repo/target/debug/deps/config_table2-deba6739245d1f90: crates/core/../../tests/config_table2.rs

crates/core/../../tests/config_table2.rs:
