/root/repo/target/debug/deps/proptests-999772ccb16e6c8d.d: crates/mem/tests/proptests.rs

/root/repo/target/debug/deps/proptests-999772ccb16e6c8d: crates/mem/tests/proptests.rs

crates/mem/tests/proptests.rs:
