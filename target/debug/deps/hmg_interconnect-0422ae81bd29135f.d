/root/repo/target/debug/deps/hmg_interconnect-0422ae81bd29135f.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/debug/deps/libhmg_interconnect-0422ae81bd29135f.rlib: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/debug/deps/libhmg_interconnect-0422ae81bd29135f.rmeta: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
