/root/repo/target/debug/deps/hmg_bench-8aff4256b9c32c94.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhmg_bench-8aff4256b9c32c94.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
