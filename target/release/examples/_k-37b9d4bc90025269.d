/root/repo/target/release/examples/_k-37b9d4bc90025269.d: crates/core/../../examples/_k.rs

/root/repo/target/release/examples/_k-37b9d4bc90025269: crates/core/../../examples/_k.rs

crates/core/../../examples/_k.rs:
