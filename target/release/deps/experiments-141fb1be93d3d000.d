/root/repo/target/release/deps/experiments-141fb1be93d3d000.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-141fb1be93d3d000: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
