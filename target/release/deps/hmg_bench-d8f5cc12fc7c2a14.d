/root/repo/target/release/deps/hmg_bench-d8f5cc12fc7c2a14.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libhmg_bench-d8f5cc12fc7c2a14.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libhmg_bench-d8f5cc12fc7c2a14.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
