/root/repo/target/release/deps/hmg_sim-94b3918a4425542c.d: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/release/deps/libhmg_sim-94b3918a4425542c.rlib: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

/root/repo/target/release/deps/libhmg_sim-94b3918a4425542c.rmeta: crates/sim/src/lib.rs crates/sim/src/error.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/watchdog.rs

crates/sim/src/lib.rs:
crates/sim/src/error.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/watchdog.rs:
