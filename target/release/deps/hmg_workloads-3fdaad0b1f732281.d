/root/repo/target/release/deps/hmg_workloads-3fdaad0b1f732281.d: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libhmg_workloads-3fdaad0b1f732281.rlib: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libhmg_workloads-3fdaad0b1f732281.rmeta: crates/workloads/src/lib.rs crates/workloads/src/archetypes.rs crates/workloads/src/gen.rs crates/workloads/src/micro.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/archetypes.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/suite.rs:
