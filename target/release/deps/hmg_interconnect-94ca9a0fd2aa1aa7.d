/root/repo/target/release/deps/hmg_interconnect-94ca9a0fd2aa1aa7.d: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/release/deps/libhmg_interconnect-94ca9a0fd2aa1aa7.rlib: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

/root/repo/target/release/deps/libhmg_interconnect-94ca9a0fd2aa1aa7.rmeta: crates/interconnect/src/lib.rs crates/interconnect/src/fabric.rs crates/interconnect/src/ids.rs crates/interconnect/src/link.rs

crates/interconnect/src/lib.rs:
crates/interconnect/src/fabric.rs:
crates/interconnect/src/ids.rs:
crates/interconnect/src/link.rs:
