/root/repo/target/release/deps/hmg-5edabb80c2bf5134.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libhmg-5edabb80c2bf5134.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libhmg-5edabb80c2bf5134.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
