/root/repo/target/release/deps/hmg_mem-98bf0e380807ef9b.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

/root/repo/target/release/deps/libhmg_mem-98bf0e380807ef9b.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

/root/repo/target/release/deps/libhmg_mem-98bf0e380807ef9b.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/directory.rs crates/mem/src/dram.rs crates/mem/src/page.rs crates/mem/src/version.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/directory.rs:
crates/mem/src/dram.rs:
crates/mem/src/page.rs:
crates/mem/src/version.rs:
