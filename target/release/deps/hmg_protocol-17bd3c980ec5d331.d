/root/repo/target/release/deps/hmg_protocol-17bd3c980ec5d331.d: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs

/root/repo/target/release/deps/libhmg_protocol-17bd3c980ec5d331.rlib: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs

/root/repo/target/release/deps/libhmg_protocol-17bd3c980ec5d331.rmeta: crates/protocol/src/lib.rs crates/protocol/src/msg.rs crates/protocol/src/op.rs crates/protocol/src/policy.rs crates/protocol/src/scope.rs crates/protocol/src/table.rs crates/protocol/src/trace.rs crates/protocol/src/tracefile.rs

crates/protocol/src/lib.rs:
crates/protocol/src/msg.rs:
crates/protocol/src/op.rs:
crates/protocol/src/policy.rs:
crates/protocol/src/scope.rs:
crates/protocol/src/table.rs:
crates/protocol/src/trace.rs:
crates/protocol/src/tracefile.rs:
