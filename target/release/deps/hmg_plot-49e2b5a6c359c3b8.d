/root/repo/target/release/deps/hmg_plot-49e2b5a6c359c3b8.d: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/release/deps/libhmg_plot-49e2b5a6c359c3b8.rlib: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

/root/repo/target/release/deps/libhmg_plot-49e2b5a6c359c3b8.rmeta: crates/plot/src/lib.rs crates/plot/src/style.rs crates/plot/src/svg.rs crates/plot/src/bars.rs crates/plot/src/lines.rs crates/plot/src/scatter.rs

crates/plot/src/lib.rs:
crates/plot/src/style.rs:
crates/plot/src/svg.rs:
crates/plot/src/bars.rs:
crates/plot/src/lines.rs:
crates/plot/src/scatter.rs:
