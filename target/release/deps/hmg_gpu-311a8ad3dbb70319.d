/root/repo/target/release/deps/hmg_gpu-311a8ad3dbb70319.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/release/deps/libhmg_gpu-311a8ad3dbb70319.rlib: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

/root/repo/target/release/deps/libhmg_gpu-311a8ad3dbb70319.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/engine.rs crates/gpu/src/metrics.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/engine.rs:
crates/gpu/src/metrics.rs:
