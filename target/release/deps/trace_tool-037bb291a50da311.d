/root/repo/target/release/deps/trace_tool-037bb291a50da311.d: crates/bench/src/bin/trace_tool.rs

/root/repo/target/release/deps/trace_tool-037bb291a50da311: crates/bench/src/bin/trace_tool.rs

crates/bench/src/bin/trace_tool.rs:
